"""The mutable posterior state: configuration + coverage + cached log-posterior.

:class:`PosteriorState` binds together the circle configuration, the
coverage raster, the prior terms and the pixel likelihood, and exposes
four *primitive* mutations — insert, delete, move, resize — each of
which returns its exact log-posterior delta computed from only the
pixels and neighbour pairs it touches.

Moves (see :mod:`repro.mcmc.moves`) are compositions of these
primitives; rejected moves are rolled back with the inverse primitives
and the cached log-posterior is restored bit-exactly from a saved value
(never by re-adding a computed inverse, which could drift).

A posterior state may cover the full image (``row_offset = col_offset =
0``) or just a partition patch — partition workers evaluate local moves
against their own window without ever touching remote pixels, which is
the property that makes the paper's ``Ml`` phases parallelisable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChainError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.mcmc.coverage import CoverageRaster
from repro.mcmc.likelihood import PixelLikelihood
from repro.mcmc.prior import CountPrior, OverlapPrior, PositionPrior, RadiusPrior
from repro.mcmc.spec import ModelSpec
from repro.mcmc.state import CircleConfiguration

__all__ = ["PosteriorState", "DeferredProgram"]


#: Sentinel marking a likelihood term inside a deferred pricing program:
#: resolved after the stacked rasterisation by applying ∓beta to the raw
#: boundary-pixel weight sum of the matching disc op.
_LIKE = object()


class DeferredProgram:
    """The replayable pricing program of one candidate move.

    ``terms`` holds one list per trial primitive: plain floats are
    scalar prior/energy terms already evaluated against the candidate's
    configuration (subtracted terms stored negated — IEEE subtraction
    is addition of the negation, bit-for-bit), and the ``_LIKE``
    sentinel marks where a likelihood delta belongs.  ``ops`` lists the
    candidate's disc rasterisations as ``(sign, x, y, r)`` in issue
    order; sentinel occurrences correspond to ops one-for-one.  Folding
    the resolved terms left-associatively reproduces each primitive's
    sequential delta bit-exactly.
    """

    __slots__ = ("terms", "ops")

    def __init__(self) -> None:
        self.terms: List[list] = []
        self.ops: List[Tuple[int, float, float, float]] = []


class PosteriorState:
    """Configuration + incremental posterior over an image window.

    Parameters
    ----------
    image:
        The filtered image window this state evaluates against.
    spec:
        The model specification (priors, likelihood shape).  For
        partition patches, pass the *full-image* spec — the position
        prior normaliser and count prior must match the master chain.
    row_offset, col_offset:
        Window position within the full image.
    bounds:
        Rectangle constraining circle centres (defaults to the full
        image rectangle implied by *spec*).
    coverage:
        Optional scratch-warmed :class:`CoverageRaster` to adopt
        instead of constructing a fresh one — it is :meth:`~CoverageRaster.reset`
        to this window, so partition workers can reuse one raster (and
        its grown scratch buffers) across cycles.
    """

    def __init__(
        self,
        image: Image,
        spec: ModelSpec,
        row_offset: int = 0,
        col_offset: int = 0,
        bounds: Optional[Rect] = None,
        hash_cell_size: Optional[float] = None,
        coverage: Optional[CoverageRaster] = None,
    ) -> None:
        self.spec = spec
        self.image = image
        self.bounds = bounds if bounds is not None else Rect(
            0.0, 0.0, float(spec.width), float(spec.height)
        )
        cell = hash_cell_size if hash_cell_size is not None else max(
            8.0, 2.0 * spec.radius_max
        )
        self.config = CircleConfiguration(hash_cell_size=cell)
        if coverage is not None:
            coverage.reset(
                image.height, image.width, row_offset=row_offset, col_offset=col_offset
            )
            self.coverage = coverage
        else:
            self.coverage = CoverageRaster(
                image.height, image.width, row_offset=row_offset, col_offset=col_offset
            )
        self.likelihood = PixelLikelihood(
            image, spec, row_offset=row_offset, col_offset=col_offset
        )
        self.count_prior = CountPrior(spec.expected_count)
        self.position_prior = PositionPrior(spec)
        self.radius_prior = RadiusPrior(spec)
        self.overlap_prior = OverlapPrior(spec)
        self._log_post = self.count_prior.log_pmf(0) + self.likelihood.base_loglik
        #: log-posterior deltas of uncommitted trial primitives, one entry
        #: per primitive so commit replays the exact `+=` sequence the
        #: legacy apply path performed (bit-parity of the cached value).
        self._trial_deltas: List[float] = []
        #: active deferred pricing program (multiproposal pass 1), or None.
        self._deferred: Optional[DeferredProgram] = None

    # -- cached posterior ------------------------------------------------------
    @property
    def log_posterior(self) -> float:
        """The incrementally maintained log-posterior (unnormalised)."""
        return self._log_post

    def set_log_posterior(self, value: float) -> None:
        """Restore a saved cached value (move rollback only)."""
        self._log_post = value

    def full_log_posterior(self) -> float:
        """Recompute the log-posterior from scratch (tests, verification)."""
        n = self.config.n
        total = self.count_prior.log_pmf(n)
        total += n * self.position_prior.per_circle()
        for i in self.config.active_indices():
            total += self.radius_prior.log_pdf(float(self.config.rs[i]))
        total += self.overlap_prior.total_energy(self.config)
        total += self.likelihood.full_loglik(self.coverage)
        return total

    def resync_cache(self) -> None:
        """Recompute and store the cached log-posterior (initialisation
        after bulk loading a configuration)."""
        self._log_post = self.full_log_posterior()

    # -- validity helpers --------------------------------------------------------
    def centre_in_bounds(self, x: float, y: float) -> bool:
        return self.bounds.contains_point(x, y)

    def radius_in_bounds(self, r: float) -> bool:
        return self.radius_prior.in_bounds(r)

    # -- primitive mutations -------------------------------------------------------
    def insert_circle(self, x: float, y: float, r: float) -> Tuple[int, float]:
        """Add a circle; returns (index, log-posterior delta).

        The caller must have validated bounds (centre inside ``bounds``,
        radius inside the prior's truncation) — violations raise.
        """
        if not self.centre_in_bounds(x, y):
            raise ChainError(f"insert at ({x:.2f}, {y:.2f}) outside bounds {self.bounds}")
        if not self.radius_in_bounds(r):
            raise ChainError(f"insert with radius {r:.2f} outside prior bounds")
        n_before = self.config.n
        delta = self.count_prior.delta_birth(n_before)
        delta += self.position_prior.per_circle()
        delta += self.radius_prior.log_pdf(r)
        delta += self.overlap_prior.circle_energy(self.config, x, y, r)
        idx = self.config.add(x, y, r)
        delta += self.likelihood.add_disc_delta(self.coverage, x, y, r)
        self._log_post += delta
        return idx, delta

    def delete_circle(self, idx: int) -> Tuple[Circle, float]:
        """Remove circle *idx*; returns (removed circle, delta)."""
        n_before = self.config.n
        removed = self.config.remove(idx)
        delta = self.count_prior.delta_death(n_before)
        delta -= self.position_prior.per_circle()
        delta -= self.radius_prior.log_pdf(removed.r)
        # Interaction energy with the remaining circles (idx already gone).
        delta -= self.overlap_prior.circle_energy(
            self.config, removed.x, removed.y, removed.r
        )
        delta += self.likelihood.remove_disc_delta(
            self.coverage, removed.x, removed.y, removed.r
        )
        self._log_post += delta
        return removed, delta

    def move_circle(self, idx: int, x: float, y: float) -> Tuple[Tuple[float, float], float]:
        """Translate circle *idx*; returns (old centre, delta)."""
        if not self.centre_in_bounds(x, y):
            raise ChainError(f"move to ({x:.2f}, {y:.2f}) outside bounds {self.bounds}")
        r = self.config.radius_of(idx)
        ox, oy = self.config.position_of(idx)
        delta = -self.overlap_prior.circle_energy(self.config, ox, oy, r, exclude=(idx,))
        delta += self.likelihood.remove_disc_delta(self.coverage, ox, oy, r)
        self.config.move_center(idx, x, y)
        delta += self.overlap_prior.circle_energy(self.config, x, y, r, exclude=(idx,))
        delta += self.likelihood.add_disc_delta(self.coverage, x, y, r)
        self._log_post += delta
        return (ox, oy), delta

    def resize_circle(self, idx: int, r: float) -> Tuple[float, float]:
        """Change circle *idx*'s radius; returns (old radius, delta)."""
        if not self.radius_in_bounds(r):
            raise ChainError(f"resize to {r:.2f} outside prior bounds")
        x, y = self.config.position_of(idx)
        old_r = self.config.radius_of(idx)
        delta = self.radius_prior.log_pdf(r) - self.radius_prior.log_pdf(old_r)
        delta -= self.overlap_prior.circle_energy(self.config, x, y, old_r, exclude=(idx,))
        delta += self.likelihood.remove_disc_delta(self.coverage, x, y, old_r)
        self.config.set_radius(idx, r)
        delta += self.overlap_prior.circle_energy(self.config, x, y, r, exclude=(idx,))
        delta += self.likelihood.add_disc_delta(self.coverage, x, y, r)
        self._log_post += delta
        return old_r, delta

    # -- trial primitives (price now, mutate coverage/posterior on commit) --------
    #
    # Each trial primitive mirrors its mutating counterpart line for
    # line: the configuration (and its spatial hash) is mutated in the
    # SAME order — so overlap-energy neighbour enumeration, free-list
    # slot recycling and merge-partner selection see bit-identical state
    # — while the coverage rasterisation is priced without touching
    # counts and the cached log-posterior is deferred to commit_trial().
    # A rejected move therefore skips the second rasterisation (and the
    # rollback energy queries) the legacy unapply path paid.

    def trial_insert_circle(self, x: float, y: float, r: float) -> Tuple[int, float]:
        """Price adding a circle; returns (index, log-posterior delta).

        The configuration is mutated (as :meth:`insert_circle` would);
        coverage counts and the cached posterior are not.
        """
        if not self.centre_in_bounds(x, y):
            raise ChainError(f"insert at ({x:.2f}, {y:.2f}) outside bounds {self.bounds}")
        if not self.radius_in_bounds(r):
            raise ChainError(f"insert with radius {r:.2f} outside prior bounds")
        prog = self._deferred
        if prog is not None:
            # Deferred: record the scalar terms (evaluated against the
            # same just-mutated configuration) and enqueue the disc op;
            # the rasterisation happens in the stacked batch pass.
            n_before = self.config.n
            terms = [
                self.count_prior.delta_birth(n_before),
                self.position_prior.per_circle(),
                self.radius_prior.log_pdf(r),
                self.overlap_prior.circle_energy(self.config, x, y, r),
            ]
            idx = self.config.add(x, y, r)
            prog.ops.append((1, x, y, r))
            terms.append(_LIKE)
            prog.terms.append(terms)
            return idx, 0.0
        n_before = self.config.n
        delta = self.count_prior.delta_birth(n_before)
        delta += self.position_prior.per_circle()
        delta += self.radius_prior.log_pdf(r)
        delta += self.overlap_prior.circle_energy(self.config, x, y, r)
        idx = self.config.add(x, y, r)
        delta += self.likelihood.trial_add_disc_delta(self.coverage, x, y, r)
        self._trial_deltas.append(delta)
        return idx, delta

    def trial_delete_circle(self, idx: int) -> Tuple[Circle, float]:
        """Price removing circle *idx*; returns (removed circle, delta)."""
        prog = self._deferred
        if prog is not None:
            n_before = self.config.n
            removed = self.config.remove(idx)
            terms = [
                self.count_prior.delta_death(n_before),
                -self.position_prior.per_circle(),
                -self.radius_prior.log_pdf(removed.r),
                -self.overlap_prior.circle_energy(
                    self.config, removed.x, removed.y, removed.r
                ),
            ]
            prog.ops.append((-1, removed.x, removed.y, removed.r))
            terms.append(_LIKE)
            prog.terms.append(terms)
            return removed, 0.0
        n_before = self.config.n
        removed = self.config.remove(idx)
        delta = self.count_prior.delta_death(n_before)
        delta -= self.position_prior.per_circle()
        delta -= self.radius_prior.log_pdf(removed.r)
        delta -= self.overlap_prior.circle_energy(
            self.config, removed.x, removed.y, removed.r
        )
        delta += self.likelihood.trial_remove_disc_delta(
            self.coverage, removed.x, removed.y, removed.r
        )
        self._trial_deltas.append(delta)
        return removed, delta

    def trial_move_circle(
        self, idx: int, x: float, y: float
    ) -> Tuple[Tuple[float, float], float]:
        """Price translating circle *idx*; returns (old centre, delta)."""
        if not self.centre_in_bounds(x, y):
            raise ChainError(f"move to ({x:.2f}, {y:.2f}) outside bounds {self.bounds}")
        prog = self._deferred
        if prog is not None:
            r = self.config.radius_of(idx)
            ox, oy = self.config.position_of(idx)
            terms: list = [
                -self.overlap_prior.circle_energy(self.config, ox, oy, r, exclude=(idx,))
            ]
            prog.ops.append((-1, ox, oy, r))
            terms.append(_LIKE)
            self.config.move_center(idx, x, y)
            terms.append(
                self.overlap_prior.circle_energy(self.config, x, y, r, exclude=(idx,))
            )
            prog.ops.append((1, x, y, r))
            terms.append(_LIKE)
            prog.terms.append(terms)
            return (ox, oy), 0.0
        r = self.config.radius_of(idx)
        ox, oy = self.config.position_of(idx)
        delta = -self.overlap_prior.circle_energy(self.config, ox, oy, r, exclude=(idx,))
        delta += self.likelihood.trial_remove_disc_delta(self.coverage, ox, oy, r)
        self.config.move_center(idx, x, y)
        delta += self.overlap_prior.circle_energy(self.config, x, y, r, exclude=(idx,))
        delta += self.likelihood.trial_add_disc_delta(self.coverage, x, y, r)
        self._trial_deltas.append(delta)
        return (ox, oy), delta

    def trial_resize_circle(self, idx: int, r: float) -> Tuple[float, float]:
        """Price resizing circle *idx*; returns (old radius, delta)."""
        if not self.radius_in_bounds(r):
            raise ChainError(f"resize to {r:.2f} outside prior bounds")
        prog = self._deferred
        if prog is not None:
            x, y = self.config.position_of(idx)
            old_r = self.config.radius_of(idx)
            terms = [
                self.radius_prior.log_pdf(r) - self.radius_prior.log_pdf(old_r),
                -self.overlap_prior.circle_energy(
                    self.config, x, y, old_r, exclude=(idx,)
                ),
            ]
            prog.ops.append((-1, x, y, old_r))
            terms.append(_LIKE)
            self.config.set_radius(idx, r)
            terms.append(
                self.overlap_prior.circle_energy(self.config, x, y, r, exclude=(idx,))
            )
            prog.ops.append((1, x, y, r))
            terms.append(_LIKE)
            prog.terms.append(terms)
            return old_r, 0.0
        x, y = self.config.position_of(idx)
        old_r = self.config.radius_of(idx)
        delta = self.radius_prior.log_pdf(r) - self.radius_prior.log_pdf(old_r)
        delta -= self.overlap_prior.circle_energy(self.config, x, y, old_r, exclude=(idx,))
        delta += self.likelihood.trial_remove_disc_delta(self.coverage, x, y, old_r)
        self.config.set_radius(idx, r)
        delta += self.overlap_prior.circle_energy(self.config, x, y, r, exclude=(idx,))
        delta += self.likelihood.trial_add_disc_delta(self.coverage, x, y, r)
        self._trial_deltas.append(delta)
        return old_r, delta

    def commit_trial(self) -> None:
        """Finalise the pending trial primitives: apply the cached
        coverage masks and fold each primitive's delta into the cached
        posterior (same `+=` sequence as the legacy apply path)."""
        self.coverage.commit_pending()
        for delta in self._trial_deltas:
            self._log_post += delta
        self._trial_deltas.clear()

    def discard_trial(self) -> None:
        """Drop the pending coverage masks and deltas (rejected move).
        The *configuration* rollback is the move's job — it replays the
        exact inverse config ops the legacy unapply performed."""
        self.coverage.discard_pending()
        self._trial_deltas.clear()

    # -- deferred pricing (multiproposal rounds) --------------------------------
    #
    # A multiproposal round prices K candidate moves against the SAME
    # current state.  Pass 1 runs each move's ordinary price() with the
    # posterior in *deferred* mode: the trial primitives mutate the
    # configuration and evaluate their scalar prior/energy terms exactly
    # as usual, but instead of rasterising discs they record a
    # replayable pricing program (DeferredProgram); the move is then
    # rolled back so the next candidate prices against the original
    # state.  Pass 2 resolves every program's disc ops in one stacked
    # rasterisation (CoverageRaster.trial_price_batch) and folds each
    # primitive's terms back together — bit-identical to the deltas the
    # sequential trial path would have produced, because the scalar
    # terms were computed by the same code against the same
    # configuration and the batched gathers mirror the sequential ones
    # element-for-element.

    def begin_deferred_move(self) -> None:
        """Enter deferred-pricing mode for one candidate move."""
        if self._deferred is not None:
            raise ChainError("begin_deferred_move while a deferred move is open")
        if self.coverage.pending_count or self._trial_deltas:
            raise ChainError("begin_deferred_move with uncommitted trial state")
        self._deferred = DeferredProgram()

    def end_deferred_move(self) -> DeferredProgram:
        """Leave deferred mode; returns the candidate's pricing program."""
        prog = self._deferred
        if prog is None:
            raise ChainError("end_deferred_move without begin_deferred_move")
        self._deferred = None
        return prog

    def price_deferred_batch(self, programs: Sequence[DeferredProgram]):
        """Resolve a round's pricing programs in one stacked pass.

        Returns one ``(per_primitive_deltas, total)`` pair per program;
        *total* is the left-associative fold the move's ``price()``
        would have returned, and the per-primitive deltas are what
        :meth:`commit_deferred` folds into the cached posterior.  The
        winning candidate's coverage masks stay staged in the raster
        until :meth:`commit_deferred` / :meth:`discard_deferred_batch`.
        """
        gathers = self.coverage.trial_price_batch(
            [prog.ops for prog in programs], self.likelihood.turn_on_cost
        )
        beta = self.likelihood.beta
        priced = []
        for prog, sums in zip(programs, gathers):
            oi = 0
            prim_deltas = []
            for terms in prog.terms:
                delta = None
                for t in terms:
                    if t is _LIKE:
                        # Same ∓beta scaling as trial_add_disc_delta /
                        # trial_remove_disc_delta applied to the same
                        # raw gather — bit-identical likelihood term.
                        w = sums[oi]
                        t = -beta * w if prog.ops[oi][0] > 0 else beta * w
                        oi += 1
                    delta = t if delta is None else delta + t
                prim_deltas.append(delta)
            total = prim_deltas[0]
            for d in prim_deltas[1:]:
                total = total + d
            priced.append((prim_deltas, total))
        return priced

    def commit_deferred(self, group: int, prim_deltas: Sequence[float]) -> None:
        """Finalise the winning candidate of a batched round: apply its
        staged coverage masks and fold its per-primitive deltas into the
        cached posterior — the same ``+=`` sequence as
        :meth:`commit_trial`.  The caller must have re-applied the
        winner's configuration ops first (``Move.reapply``)."""
        self.coverage.commit_batch_group(group)
        for delta in prim_deltas:
            self._log_post += delta

    def discard_deferred_batch(self) -> None:
        """Drop every staged batch mask (end of a round)."""
        self.coverage.discard_batch()

    # Config-only rollback helpers: the inverse configuration mutations
    # of the trial primitives, with the coverage/posterior work (already
    # skipped by the trial) omitted.  Op order matches legacy unapply.
    def rollback_insert(self, idx: int) -> None:
        self.config.remove(idx)

    def rollback_delete(self, circle: Circle) -> int:
        return self.config.add(circle.x, circle.y, circle.r)

    def rollback_move(self, idx: int, x: float, y: float) -> None:
        self.config.move_center(idx, x, y)

    def rollback_resize(self, idx: int, r: float) -> None:
        self.config.set_radius(idx, r)

    # -- bulk loading ---------------------------------------------------------------
    def load_circles(self, circles: Sequence[Circle]) -> List[int]:
        """Insert many circles and resync the cache; returns their indices.

        Unlike :meth:`insert_circle` this does not validate bounds pixel
        by pixel — it is used to seed initial states and to build
        partition-worker contexts that legitimately contain *frozen*
        circles whose discs cross the window edge.
        """
        indices: List[int] = []
        for c in circles:
            idx = self.config.add(c.x, c.y, c.r)
            # Counts-only rasterisation: the per-disc weighted delta was
            # discarded here anyway, and resync_cache() recomputes the
            # posterior in full below.
            self.coverage.add_disc_counts_only(c.x, c.y, c.r)
            indices.append(idx)
        self.resync_cache()
        return indices

    def snapshot_circles(self) -> List[Circle]:
        """Immutable copy of the current configuration."""
        return self.config.circles()

    def verify_consistency(self, atol: float = 1e-6) -> None:
        """Assert the cached posterior matches a full recomputation
        (tests and long-run integrity checks).

        Also rebuilds the coverage raster from the configuration with
        ``debug_checks`` enabled and asserts the incremental counts
        match — the thorough form of the per-removal underflow guard
        the hot path no longer pays for.
        """
        if (
            self.coverage.pending_count
            or self._trial_deltas
            or self.coverage.batch_pending_count
            or self._deferred is not None
        ):
            raise ChainError(
                "verify_consistency with uncommitted trial state: "
                f"{self.coverage.pending_count} pending coverage op(s), "
                f"{len(self._trial_deltas)} pending delta(s), "
                f"{self.coverage.batch_pending_count} staged batch group(s), "
                f"deferred={'open' if self._deferred is not None else 'closed'}"
            )
        h, w = self.coverage.shape
        rebuilt = CoverageRaster(
            h, w,
            row_offset=self.coverage.row_offset,
            col_offset=self.coverage.col_offset,
            debug_checks=True,
        )
        rebuilt.rebuild_from(*self.config.to_arrays())
        if not rebuilt.equals(self.coverage):
            raise ChainError(
                "incremental coverage counts deviate from a from-scratch "
                "rasterisation of the configuration"
            )
        full = self.full_log_posterior()
        if not np.isclose(self._log_post, full, atol=atol, rtol=1e-9):
            raise ChainError(
                f"cached log-posterior {self._log_post!r} deviates from "
                f"recomputed value {full!r}"
            )
