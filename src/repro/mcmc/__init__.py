"""The reversible-jump MCMC engine (the paper's case-study algorithm).

The model is a marked point process of circles fitted to a filtered
image by reversible-jump Metropolis–Hastings (Green 1995, the paper's
ref. [8]).  The move set matches §III of the paper:

========  =========================  ==========================
move      effect                      class (§V)
========  =========================  ==========================
birth     add a circle               global (changes count)
death     delete a circle            global (changes count)
split     one circle → two           global (changes count)
merge     two circles → one          global (changes count)
replace   delete + add elsewhere     global (whole-image range)
translate perturb a centre           local
resize    perturb a radius           local
========  =========================  ==========================

Posterior = count prior (Poisson) × per-circle position/radius priors ×
pairwise overlap penalty × Gaussian pixel likelihood against the
filtered image.  All posterior evaluation is *incremental*: a move's
log-posterior delta is computed from the pixels and neighbours the move
actually touches, which is exactly the locality property periodic
partitioning exploits.
"""

from repro.mcmc.spec import ModelSpec, MoveConfig, MoveType, LOCAL_MOVES, GLOBAL_MOVES
from repro.mcmc.state import CircleConfiguration
from repro.mcmc.coverage import CoverageRaster
from repro.mcmc.likelihood import PixelLikelihood
from repro.mcmc.prior import CountPrior, RadiusPrior, OverlapPrior, PositionPrior
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.moves import (
    Move,
    BirthMove,
    DeathMove,
    SplitMove,
    MergeMove,
    ReplaceMove,
    TranslateMove,
    ResizeMove,
    NullMove,
    MoveGenerator,
)
from repro.mcmc.kernel import (
    MultiproposalRound,
    StepResult,
    evaluate_move,
    legacy_kernel,
    metropolis_hastings_step,
    multiproposal_step,
    price_move,
    set_trial_kernel,
    trial_kernel_enabled,
)
from repro.mcmc.chain import MarkovChain, ChainResult
from repro.mcmc.diagnostics import (
    AcceptanceStats,
    Trace,
    convergence_iteration,
    effective_sample_size,
)
from repro.mcmc.speculative import (
    MultiproposalChain,
    MultiproposalResult,
    SpeculativeChain,
    speculative_speedup,
)
from repro.mcmc.mc3 import MetropolisCoupledChains
from repro.mcmc.samples import SampleCollector, PosteriorSummary
from repro.mcmc.adaptation import AdaptationResult, adapt_local_steps

__all__ = [
    "ModelSpec",
    "MoveConfig",
    "MoveType",
    "LOCAL_MOVES",
    "GLOBAL_MOVES",
    "CircleConfiguration",
    "CoverageRaster",
    "PixelLikelihood",
    "CountPrior",
    "RadiusPrior",
    "OverlapPrior",
    "PositionPrior",
    "PosteriorState",
    "Move",
    "BirthMove",
    "DeathMove",
    "SplitMove",
    "MergeMove",
    "ReplaceMove",
    "TranslateMove",
    "ResizeMove",
    "NullMove",
    "MoveGenerator",
    "metropolis_hastings_step",
    "multiproposal_step",
    "MultiproposalRound",
    "evaluate_move",
    "price_move",
    "legacy_kernel",
    "set_trial_kernel",
    "trial_kernel_enabled",
    "StepResult",
    "MarkovChain",
    "ChainResult",
    "AcceptanceStats",
    "Trace",
    "convergence_iteration",
    "effective_sample_size",
    "SpeculativeChain",
    "speculative_speedup",
    "MultiproposalChain",
    "MultiproposalResult",
    "MetropolisCoupledChains",
    "SampleCollector",
    "PosteriorSummary",
    "AdaptationResult",
    "adapt_local_steps",
]
