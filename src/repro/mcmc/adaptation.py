"""Burn-in adaptation of local proposal step sizes.

The paper fixes its proposal parameters; on our substrate the sharp
synthetic likelihood makes the default steps too bold (converged-regime
acceptance ≲ 5 % vs the ~25 % the paper reports).  This module provides
the standard Robbins–Monro remedy: during burn-in, scale the translate
and resize steps toward a target acceptance rate, then *freeze* them —
adapting forever would break detailed balance, so adaptation is
strictly a burn-in activity (diminishing or truncated adaptation).

Freezing also matters for the periodic sampler: partition workers must
all use the same MoveConfig, so adaptation runs on the master before
partitioned sampling starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.mcmc.chain import MarkovChain
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import LOCAL_MOVES, ModelSpec, MoveConfig
from repro.utils.rng import SeedLike, coerce_stream

__all__ = ["AdaptationResult", "adapt_local_steps"]


@dataclass(frozen=True)
class AdaptationResult:
    """Outcome of a burn-in adaptation run."""

    move_config: MoveConfig  #: the frozen, adapted configuration
    iterations: int
    final_acceptance: float  #: local-move acceptance over the last batch
    translate_step: float
    resize_step: float
    batches: int


def adapt_local_steps(
    post: PosteriorState,
    spec: ModelSpec,
    base_config: MoveConfig,
    target_acceptance: float = 0.25,
    batch_size: int = 500,
    max_batches: int = 40,
    tolerance: float = 0.05,
    min_step: float = 0.05,
    seed: SeedLike = None,
) -> AdaptationResult:
    """Tune translate/resize steps toward *target_acceptance*.

    Runs batches of local-only iterations on *post* (which is mutated —
    this doubles as burn-in), rescaling both steps by
    ``exp(acc − target)`` after each batch (Robbins–Monro with unit
    gain, clipped to ×/÷2 per batch).  Stops early once the batch
    acceptance is within *tolerance* of the target.

    Returns the adapted :class:`MoveConfig` (global-move parameters
    untouched) plus diagnostics.  The caller should use the returned
    config for all subsequent sampling and discard the states visited
    during adaptation.
    """
    if not (0.0 < target_acceptance < 1.0):
        raise ConfigurationError(
            f"target_acceptance must be in (0, 1), got {target_acceptance}"
        )
    if batch_size < 50:
        raise ConfigurationError(f"batch_size must be >= 50, got {batch_size}")
    if max_batches < 1:
        raise ConfigurationError(f"max_batches must be >= 1, got {max_batches}")
    if post.config.n == 0:
        raise ConfigurationError(
            "adaptation needs a non-empty configuration (run a short full-move "
            "burn-in first, or seed the state)"
        )

    stream = coerce_stream(seed)
    translate = base_config.translate_step
    resize = base_config.resize_step
    iterations = 0
    acc = 0.0
    batches_run = 0

    for _ in range(max_batches):
        cfg = replace(base_config, translate_step=translate, resize_step=resize)
        gen = MoveGenerator(spec, cfg, mode="local")
        chain = MarkovChain(post, gen, seed=stream.spawn_one(),
                            record_every=batch_size)
        chain.run(batch_size)
        iterations += batch_size
        batches_run += 1
        acc = sum(chain.stats.accepted[mt] for mt in LOCAL_MOVES) / batch_size
        if abs(acc - target_acceptance) <= tolerance:
            break
        # Too many acceptances -> bolder steps; too few -> finer steps.
        factor = math.exp(acc - target_acceptance)
        factor = min(2.0, max(0.5, factor))
        translate = max(min_step, translate * factor)
        resize = max(min_step, resize * factor)

    adapted = replace(base_config, translate_step=translate, resize_step=resize)
    return AdaptationResult(
        move_config=adapted,
        iterations=iterations,
        final_acceptance=acc,
        translate_step=translate,
        resize_step=resize,
        batches=batches_run,
    )
