"""Posterior sampling and summarisation.

§II: "The conventional use is to allow the chain to reach equilibrium
then to take samples of the chain's state at regular intervals,
analysis of these samples will reveal the stationary distribution" —
and §I motivates MCMC over greedy methods precisely because it can
report "similar but distinct solutions ... and the relative
probabilities of these different interpretations".

:class:`SampleCollector` hooks into any chain driver (sequential,
speculative, periodic) and retains configuration snapshots at a fixed
iteration stride after a burn-in.  :class:`PosteriorSummary` then
answers the questions the paper cares about:

* the posterior distribution over the artifact *count* (is that blob
  one cell or two overlapping cells?);
* a per-pixel *occupancy map* (probability the pixel is covered by any
  artifact) — the soft segmentation;
* the *modal* count and a representative configuration at that count.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ChainError
from repro.geometry.circle import Circle

__all__ = ["SampleCollector", "PosteriorSummary"]


class SampleCollector:
    """Retains configuration snapshots at a fixed stride after burn-in.

    Parameters
    ----------
    burn_in:
        Iterations to discard before the first retained sample.
    stride:
        Iterations between retained samples ("samples ... at regular
        intervals").
    max_samples:
        Hard cap on retained snapshots (memory guard); once reached,
        further offers are ignored.
    """

    def __init__(self, burn_in: int, stride: int, max_samples: int = 10_000) -> None:
        if burn_in < 0:
            raise ChainError(f"burn_in must be >= 0, got {burn_in}")
        if stride <= 0:
            raise ChainError(f"stride must be positive, got {stride}")
        if max_samples <= 0:
            raise ChainError(f"max_samples must be positive, got {max_samples}")
        self.burn_in = burn_in
        self.stride = stride
        self.max_samples = max_samples
        self.samples: List[List[Circle]] = []
        self.sample_iterations: List[int] = []
        self._next_due = burn_in + stride

    def offer(self, iteration: int, circles: Sequence[Circle]) -> bool:
        """Present the state at *iteration*; returns True if retained.

        Call once per iteration (or per phase with the current iteration
        count — the collector tolerates gaps and samples at the first
        opportunity past each due point).
        """
        if iteration < self._next_due or len(self.samples) >= self.max_samples:
            return False
        self.samples.append(list(circles))
        self.sample_iterations.append(iteration)
        # Skip any due points the caller's stride jumped over.
        missed = (iteration - self._next_due) // self.stride
        self._next_due += (missed + 1) * self.stride
        return True

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> "PosteriorSummary":
        if not self.samples:
            raise ChainError("no samples collected (burn-in too long?)")
        return PosteriorSummary(samples=self.samples)


@dataclass
class PosteriorSummary:
    """Statistics over retained configuration samples."""

    samples: List[List[Circle]]

    # -- count posterior --------------------------------------------------
    def count_distribution(self) -> Dict[int, float]:
        """P(N = n) estimated from the samples."""
        counts = Counter(len(s) for s in self.samples)
        total = len(self.samples)
        return {n: c / total for n, c in sorted(counts.items())}

    def count_mode(self) -> int:
        """The most probable artifact count."""
        dist = self.count_distribution()
        return max(dist, key=lambda n: (dist[n], -n))

    def count_mean(self) -> float:
        return float(np.mean([len(s) for s in self.samples]))

    def count_credible_interval(self, mass: float = 0.95) -> Tuple[int, int]:
        """Smallest central interval of counts holding >= *mass*."""
        if not (0.0 < mass <= 1.0):
            raise ChainError(f"mass must be in (0, 1], got {mass}")
        ns = sorted(len(s) for s in self.samples)
        lo_idx = int(math.floor((1.0 - mass) / 2.0 * len(ns)))
        hi_idx = min(len(ns) - 1, int(math.ceil((1.0 + mass) / 2.0 * len(ns))) - 1)
        return ns[lo_idx], ns[hi_idx]

    # -- occupancy ------------------------------------------------------------
    def occupancy_map(self, height: int, width: int) -> np.ndarray:
        """P(pixel covered by >= 1 artifact), estimated over samples.

        The soft segmentation: thresholding it at 0.5 gives the
        posterior-majority artifact mask.
        """
        if height <= 0 or width <= 0:
            raise ChainError(f"occupancy map needs positive dims, got {height}x{width}")
        acc = np.zeros((height, width), dtype=np.float64)
        cols = np.arange(width, dtype=np.float64) + 0.5
        rows = np.arange(height, dtype=np.float64) + 0.5
        for sample in self.samples:
            covered = np.zeros((height, width), dtype=bool)
            for c in sample:
                c0 = max(0, int(math.floor(c.x - c.r - 0.5)))
                c1 = min(width, int(math.ceil(c.x + c.r + 0.5)))
                r0 = max(0, int(math.floor(c.y - c.r - 0.5)))
                r1 = min(height, int(math.ceil(c.y + c.r + 0.5)))
                if c1 <= c0 or r1 <= r0:
                    continue
                mask = (cols[c0:c1][None, :] - c.x) ** 2 + (
                    rows[r0:r1][:, None] - c.y
                ) ** 2 <= c.r * c.r
                covered[r0:r1, c0:c1] |= mask
            acc += covered
        return acc / len(self.samples)

    # -- representative configurations ---------------------------------------
    def modal_configuration(self) -> List[Circle]:
        """A representative sample at the modal count (the latest one —
        latest samples are the best mixed)."""
        mode = self.count_mode()
        for sample in reversed(self.samples):
            if len(sample) == mode:
                return list(sample)
        raise ChainError("internal: modal count not present in samples")

    def alternative_interpretations(self, top_k: int = 3) -> List[Tuple[int, float, List[Circle]]]:
        """The §I promise: the top-k count hypotheses with their
        probabilities and a representative configuration for each.

        Returns (count, probability, configuration) triples, most
        probable first.
        """
        if top_k <= 0:
            raise ChainError(f"top_k must be positive, got {top_k}")
        dist = self.count_distribution()
        ranked = sorted(dist.items(), key=lambda kv: -kv[1])[:top_k]
        out = []
        for n, p in ranked:
            rep = next(s for s in reversed(self.samples) if len(s) == n)
            out.append((n, p, list(rep)))
        return out
