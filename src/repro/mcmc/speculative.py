"""Speculative moves (the paper's ref. [11], used in eqs. (3)–(4)).

The idea: while the kernel considers move A, additional workers
speculatively consider moves B, C, ... *assuming A is rejected* (true
~75 % of the time).  At most one of the simultaneously considered moves
may be accepted, so the chain's distribution is untouched; the win is
wall-clock — a round of ``n`` speculative iterations costs about one
iteration's time but advances the chain by

    E[iterations/round] = (1 − p_r^n) / (1 − p_r)

giving the runtime fraction ``(1 − p_r) / (1 − p_r^n)`` quoted in §VI.

:class:`SpeculativeChain` implements the *semantics* (rounds of
proposals generated from a common state, first acceptance wins) with
sequential evaluation.  True thread-parallel evaluation of Python
bytecode cannot speed up under the GIL, so the wall-clock benefit on
this substrate is modelled, not measured: :func:`speculative_speedup`
is the model, and the round statistics the chain collects
(``iterations_per_round``) validate its expectation empirically —
see ``benchmarks/bench_speculative.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ChainError, ConfigurationError
from repro.geometry.circle import Circle
from repro.mcmc.diagnostics import AcceptanceStats, Trace
from repro.mcmc.kernel import (
    evaluate_move,
    multiproposal_step,
    price_move,
    trial_kernel_enabled,
)
from repro.mcmc.moves import MoveGenerator, NullMove
from repro.mcmc.posterior import PosteriorState
from repro.utils.rng import RngStream, SeedLike, coerce_stream

__all__ = [
    "SpeculativeChain",
    "SpeculativeResult",
    "MultiproposalChain",
    "MultiproposalResult",
    "speculative_speedup",
]


def speculative_speedup(p_r: float, n: int) -> float:
    """Expected runtime fraction under speculative moves: (1−p_r)/(1−p_r^n).

    *p_r* is the per-iteration rejection probability, *n* the number of
    moves considered simultaneously (threads).  Returns 1.0 for n=1 and
    approaches (1−p_r) as n → ∞.
    """
    if not (0.0 <= p_r <= 1.0):
        raise ConfigurationError(f"p_r must be in [0, 1], got {p_r}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if p_r == 1.0:
        return 1.0 / n  # every round consumes n iterations in one slot
    if p_r == 0.0:
        return 1.0
    return (1.0 - p_r) / (1.0 - p_r**n)


@dataclass
class SpeculativeResult:
    """Summary of a speculative run."""

    iterations: int
    rounds: int
    stats: AcceptanceStats
    posterior_trace: Trace

    @property
    def iterations_per_round(self) -> float:
        """Empirical speedup factor (compare with 1/speculative_speedup)."""
        return self.iterations / self.rounds if self.rounds else 0.0


class SpeculativeChain:
    """A Markov chain advanced in speculative rounds of *width* proposals.

    Each round:

    1. generate up to ``width`` proposals from the *current* state (each
       later proposal is only reached if all earlier ones are rejected,
       so generating them from the unchanged state is exactly the
       speculative-execution assumption);
    2. evaluate them in order; the first acceptance is applied and the
       rest of the round is discarded.

    The resulting chain law is identical to the sequential sampler's.
    """

    def __init__(
        self,
        post: PosteriorState,
        gen: MoveGenerator,
        width: int,
        seed: SeedLike = None,
        record_every: int = 100,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"speculative width must be >= 1, got {width}")
        self.post = post
        self.gen = gen
        self.width = width
        self.stream: RngStream = coerce_stream(seed)
        self.record_every = max(1, record_every)
        self.iteration = 0
        self.rounds = 0
        self.stats = AcceptanceStats()
        self.posterior_trace = Trace()

    def run_round(self, max_width: Optional[int] = None) -> int:
        """Execute one speculative round; returns iterations consumed."""
        width = self.width if max_width is None else min(self.width, max_width)
        if width < 1:
            raise ChainError(f"round width must be >= 1, got {width}")
        consumed = 0
        if trial_kernel_enabled():
            # Trial protocol: each losing proposal is priced and rolled
            # back without ever touching coverage counts; the winner is
            # committed straight from its cached rasterisation masks —
            # no evaluate-rollback-reapply round-trip.
            for _ in range(width):
                move = self.gen.generate(self.post, self.stream)
                consumed += 1
                if isinstance(move, NullMove) or not move.is_valid(self.post):
                    self.stats.record(move.move_type, proposed=False, accepted=False)
                    continue
                log_alpha = price_move(self.post, move)
                if log_alpha is None:  # pragma: no cover - validity pre-checked
                    self.stats.record(move.move_type, proposed=False, accepted=False)
                    continue
                accept = (
                    log_alpha >= 0.0
                    or math.log(self.stream.random() + 1e-300) < log_alpha
                )
                self.stats.record(move.move_type, proposed=True, accepted=accept)
                if accept:
                    move.commit(self.post)
                    break
                move.rollback(self.post)
        else:
            # Legacy reference protocol (parity gating / benchmarking).
            winner = None
            for _ in range(width):
                move = self.gen.generate(self.post, self.stream)
                consumed += 1
                if isinstance(move, NullMove) or not move.is_valid(self.post):
                    self.stats.record(move.move_type, proposed=False, accepted=False)
                    continue
                log_alpha = evaluate_move(self.post, move)
                if log_alpha is None:
                    self.stats.record(move.move_type, proposed=False, accepted=False)
                    continue
                accept = (
                    log_alpha >= 0.0
                    or math.log(self.stream.random() + 1e-300) < log_alpha
                )
                self.stats.record(move.move_type, proposed=True, accepted=accept)
                if accept:
                    winner = move
                    break
            if winner is not None:
                winner.apply(self.post)
        self.rounds += 1
        self.iteration += consumed
        if self.iteration // self.record_every > (self.iteration - consumed) // self.record_every:
            self.posterior_trace.record(self.iteration, self.post.log_posterior)
        return consumed

    def run(self, iterations: int) -> SpeculativeResult:
        """Advance the chain by at least *iterations* iterations (the last
        round is truncated so the total is exact)."""
        if iterations < 0:
            raise ChainError(f"iterations must be >= 0, got {iterations}")
        target = self.iteration + iterations
        while self.iteration < target:
            self.run_round(max_width=target - self.iteration)
        return SpeculativeResult(
            iterations=self.iteration,
            rounds=self.rounds,
            stats=self.stats,
            posterior_trace=self.posterior_trace,
        )


@dataclass
class MultiproposalResult:
    """Summary of a multiproposal run."""

    iterations: int
    rounds: int
    stats: AcceptanceStats
    posterior_trace: Trace
    count_trace: Trace
    final_circles: List[Circle]

    @property
    def iterations_per_round(self) -> float:
        """Empirical iterations consumed per batched round."""
        return self.iterations / self.rounds if self.rounds else 0.0


class MultiproposalChain:
    """A Markov chain advanced in batched K-way multiproposal rounds.

    Where :class:`SpeculativeChain` models *parallel* evaluation of a
    round (one proposal per worker), this chain exploits the same
    first-acceptance-wins round structure for *vectorisation*: all K
    candidates are priced through one stacked rasterisation
    (:func:`repro.mcmc.kernel.multiproposal_step`), amortising numpy
    dispatch overhead across the round.  The chain law is identical to
    the sequential sampler's, and ``width=1`` reproduces
    :class:`~repro.mcmc.chain.MarkovChain` bit-for-bit — same RNG
    consumption, same floats, same trace points.

    ``batch=False`` selects the non-batched reference implementation
    with identical RNG consumption order; the parity suite gates the
    batched path against it at every width.
    """

    def __init__(
        self,
        post: PosteriorState,
        gen: MoveGenerator,
        width: int,
        seed: SeedLike = None,
        record_every: int = 100,
        temperature: float = 1.0,
        batch: bool = True,
    ) -> None:
        if width < 1:
            raise ConfigurationError(f"multiproposal width must be >= 1, got {width}")
        self.post = post
        self.gen = gen
        self.width = width
        self.stream: RngStream = coerce_stream(seed)
        self.record_every = max(1, record_every)
        self.temperature = float(temperature)
        self.batch = bool(batch)
        self.iteration = 0
        self.rounds = 0
        self._next_record = self.record_every
        self.stats = AcceptanceStats()
        self.posterior_trace = Trace()
        self.count_trace = Trace()

    def run_round(self, max_width: Optional[int] = None) -> int:
        """Execute one multiproposal round; returns iterations consumed."""
        width = self.width if max_width is None else min(self.width, max_width)
        round_ = multiproposal_step(
            self.post, self.gen, self.stream, width,
            temperature=self.temperature, batch=self.batch,
        )
        for res in round_.results:
            self.stats.record(res.move_type, res.proposed, res.accepted)
        self.rounds += 1
        self.iteration += round_.consumed
        # Crossing-based trace sampling: at width 1 every crossing lands
        # exactly on a multiple of record_every, matching MarkovChain's
        # recording points (and values) bit-for-bit.
        if self.iteration >= self._next_record:
            self.posterior_trace.record(self.iteration, self.post.log_posterior)
            self.count_trace.record(self.iteration, float(self.post.config.n))
            while self._next_record <= self.iteration:
                self._next_record += self.record_every
        return round_.consumed

    def run(self, iterations: int) -> MultiproposalResult:
        """Advance the chain by exactly *iterations* iterations (the last
        round is truncated so the total is exact)."""
        if iterations < 0:
            raise ChainError(f"iterations must be >= 0, got {iterations}")
        target = self.iteration + iterations
        while self.iteration < target:
            self.run_round(max_width=target - self.iteration)
        return MultiproposalResult(
            iterations=self.iteration,
            rounds=self.rounds,
            stats=self.stats,
            posterior_trace=self.posterior_trace,
            count_trace=self.count_trace,
            final_circles=self.post.snapshot_circles(),
        )
