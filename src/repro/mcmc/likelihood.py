"""Gaussian pixel likelihood with O(disc) incremental deltas.

The model renders covered pixels at intensity ``fg`` and uncovered ones
at ``bg``; the log-likelihood against the filtered image *I* is

    log L(config) = -beta * Σ_p (I_p - M_p)²

Only the *difference* between posterior values ever matters to
Metropolis–Hastings (§II: "whilst the prior and likelihood probabilities
cannot be expressed exactly, the ratio ... can be calculated"), and
turning one pixel on changes log L by

    -beta * [(I_p - fg)² - (I_p - bg)²]  =  -beta * D_p

so we precompute the weight map ``D`` once and every move's likelihood
delta becomes a masked sum over the pixels whose coverage flipped —
exactly what :class:`~repro.mcmc.coverage.CoverageRaster` reports.
"""

from __future__ import annotations



from repro.errors import ChainError
from repro.imaging.image import Image
from repro.mcmc.coverage import CoverageRaster
from repro.mcmc.spec import ModelSpec

__all__ = ["PixelLikelihood"]


class PixelLikelihood:
    """Per-pixel Gaussian likelihood over an image window.

    Parameters
    ----------
    image:
        The filtered image (full frame or a partition patch).
    spec:
        Model spec providing ``foreground``, ``background`` and
        ``likelihood_beta``.
    row_offset, col_offset:
        Position of the window inside the full image (partition workers
        evaluate over their patch only).
    """

    __slots__ = ("beta", "turn_on_cost", "base_loglik", "row_offset", "col_offset")

    def __init__(
        self,
        image: Image,
        spec: ModelSpec,
        row_offset: int = 0,
        col_offset: int = 0,
    ) -> None:
        pixels = image.pixels
        fg, bg = spec.foreground, spec.background
        self.beta = spec.likelihood_beta
        # D_p: change in squared error when pixel p flips bg -> fg.
        self.turn_on_cost = (pixels - fg) ** 2 - (pixels - bg) ** 2
        # log-likelihood of the empty configuration.
        self.base_loglik = -self.beta * float(((pixels - bg) ** 2).sum())
        self.row_offset = int(row_offset)
        self.col_offset = int(col_offset)

    # -- deltas (hot path) -----------------------------------------------------
    def add_disc_delta(self, coverage: CoverageRaster, x: float, y: float, r: float) -> float:
        """Apply a disc to *coverage*; return the log-likelihood delta."""
        self._check_aligned(coverage)
        return -self.beta * coverage.add_disc(x, y, r, self.turn_on_cost)

    def remove_disc_delta(self, coverage: CoverageRaster, x: float, y: float, r: float) -> float:
        """Remove a disc from *coverage*; return the log-likelihood delta."""
        self._check_aligned(coverage)
        return self.beta * coverage.remove_disc(x, y, r, self.turn_on_cost)

    def trial_add_disc_delta(
        self, coverage: CoverageRaster, x: float, y: float, r: float
    ) -> float:
        """Price adding a disc without mutating *coverage* — the delta is
        bit-identical to :meth:`add_disc_delta`; the rasterised mask
        stays pending on the raster until committed or discarded."""
        self._check_aligned(coverage)
        return -self.beta * coverage.trial_add_disc(x, y, r, self.turn_on_cost)

    def trial_remove_disc_delta(
        self, coverage: CoverageRaster, x: float, y: float, r: float
    ) -> float:
        """Price removing a disc without mutating *coverage*; see
        :meth:`trial_add_disc_delta`."""
        self._check_aligned(coverage)
        return self.beta * coverage.trial_remove_disc(x, y, r, self.turn_on_cost)

    # -- full evaluation (tests / initialisation) -------------------------------
    def full_loglik(self, coverage: CoverageRaster) -> float:
        """Log-likelihood of the configuration represented by *coverage*."""
        self._check_aligned(coverage)
        return self.base_loglik - self.beta * coverage.covered_weight_sum(
            self.turn_on_cost
        )

    def _check_aligned(self, coverage: CoverageRaster) -> None:
        if (
            coverage.counts.shape != self.turn_on_cost.shape
            or coverage.row_offset != self.row_offset
            or coverage.col_offset != self.col_offset
        ):
            raise ChainError(
                "coverage raster misaligned with likelihood window: "
                f"{coverage.counts.shape}@({coverage.row_offset},{coverage.col_offset}) vs "
                f"{self.turn_on_cost.shape}@({self.row_offset},{self.col_offset})"
            )
