"""Prior terms of the posterior.

Four independent pieces (§III: "the distribution and size of the nuclei
and the degree to which overlap is tolerated"):

* :class:`CountPrior` — Poisson on the number of circles, with the mean
  supplied by prior knowledge or eq. (5)'s density estimate.
* :class:`PositionPrior` — uniform over the image rectangle.  Constant
  per circle but *not* ignorable: it enters every dimension-changing
  acceptance ratio.
* :class:`RadiusPrior` — truncated Gaussian on each radius.
* :class:`OverlapPrior` — pairwise penalty proportional to the lens
  area of intersecting discs.

Every class exposes log-densities and the *deltas* the kernel actually
consumes, so full posterior evaluation only happens in tests.
"""

from __future__ import annotations

import math
from typing import Sequence


from repro.errors import ConfigurationError
from repro.geometry.overlap import circle_circle_overlap_area
from repro.mcmc.spec import ModelSpec
from repro.mcmc.state import CircleConfiguration
from repro.utils.rng import RngStream

__all__ = ["CountPrior", "PositionPrior", "RadiusPrior", "OverlapPrior"]

_NEG_INF = float("-inf")
_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


class CountPrior:
    """Poisson prior on the number of circles."""

    __slots__ = ("lam", "_log_lam")

    def __init__(self, expected_count: float) -> None:
        if expected_count <= 0:
            raise ConfigurationError(
                f"expected_count must be positive, got {expected_count}"
            )
        self.lam = float(expected_count)
        self._log_lam = math.log(self.lam)

    def log_pmf(self, n: int) -> float:
        """log P(N = n) for the Poisson(λ)."""
        if n < 0:
            return _NEG_INF
        return n * self._log_lam - self.lam - math.lgamma(n + 1)

    def delta_birth(self, n_before: int) -> float:
        """log P(n+1) - log P(n)."""
        return self._log_lam - math.log(n_before + 1)

    def delta_death(self, n_before: int) -> float:
        """log P(n-1) - log P(n); -inf if the state has no circles."""
        if n_before <= 0:
            return _NEG_INF
        return math.log(n_before) - self._log_lam


class PositionPrior:
    """Uniform position prior over the image rectangle."""

    __slots__ = ("log_density",)

    def __init__(self, spec: ModelSpec) -> None:
        self.log_density = -math.log(spec.area)

    def per_circle(self) -> float:
        """log-density contribution of one circle's position."""
        return self.log_density


class RadiusPrior:
    """Gaussian radius prior truncated to [radius_min, radius_max]."""

    __slots__ = ("mean", "std", "rmin", "rmax", "_log_norm")

    def __init__(self, spec: ModelSpec) -> None:
        self.mean = spec.radius_mean
        self.std = spec.radius_std
        self.rmin = spec.radius_min
        self.rmax = spec.radius_max
        z_hi = _phi((self.rmax - self.mean) / self.std)
        z_lo = _phi((self.rmin - self.mean) / self.std)
        mass = z_hi - z_lo
        if mass <= 0:
            raise ConfigurationError(
                f"radius prior has no mass in [{self.rmin}, {self.rmax}]"
            )
        self._log_norm = math.log(self.std) + _LOG_SQRT_2PI + math.log(mass)

    def log_pdf(self, r: float) -> float:
        """Truncated-normal log-density; -inf outside the bounds."""
        if not (self.rmin <= r <= self.rmax):
            return _NEG_INF
        z = (r - self.mean) / self.std
        return -0.5 * z * z - self._log_norm

    def in_bounds(self, r: float) -> bool:
        return self.rmin <= r <= self.rmax

    def sample(self, stream: RngStream) -> float:
        """Draw from the truncated normal by rejection (fast for the
        narrow truncations used here)."""
        for _ in range(10000):
            r = stream.normal(self.mean, self.std)
            if self.rmin <= r <= self.rmax:
                return r
        # Essentially impossible unless the spec is pathological.
        return min(max(self.mean, self.rmin), self.rmax)


class OverlapPrior:
    """Pairwise overlap penalty: -gamma * Σ_{i<j} lens_area(i, j).

    The interaction is strictly local: a circle only interacts with
    circles whose centres lie within ``r + radius_max`` of its own, so
    deltas are evaluated from a spatial-hash neighbourhood query.
    """

    __slots__ = ("gamma", "rmax")

    def __init__(self, spec: ModelSpec) -> None:
        self.gamma = spec.overlap_gamma
        self.rmax = spec.radius_max

    def circle_energy(
        self,
        config: CircleConfiguration,
        x: float,
        y: float,
        r: float,
        exclude: Sequence[int] = (),
    ) -> float:
        """Interaction energy between disc (x, y, r) and the configuration.

        *exclude* lists indices not to pair with (the circle itself
        during a translate/resize evaluation, or a merge partner).

        Neighbourhoods are a handful of circles, where scalar ``math``
        beats per-call numpy ufunc dispatch by an order of magnitude —
        this is the single hottest prior call of the chain kernel.
        """
        if self.gamma == 0.0:
            return 0.0
        candidates = config.neighbours_within(x, y, r + self.rmax)
        if not candidates:
            return 0.0
        xs, ys, rs = config.xs, config.ys, config.rs
        total = 0.0
        # exclude is a 0-2 element tuple in the hot path: plain
        # membership beats building a set per call.
        for i in candidates:
            if i in exclude:
                continue
            total += circle_circle_overlap_area(
                x, y, r, float(xs[i]), float(ys[i]), float(rs[i])
            )
        return -self.gamma * total

    def pair_energy(
        self, x0: float, y0: float, r0: float, x1: float, y1: float, r1: float
    ) -> float:
        """Interaction energy of one specific pair."""
        if self.gamma == 0.0:
            return 0.0
        return -self.gamma * circle_circle_overlap_area(x0, y0, r0, x1, y1, r1)

    def total_energy(self, config: CircleConfiguration) -> float:
        """Σ over all unordered pairs (full evaluation, tests only)."""
        if self.gamma == 0.0:
            return 0.0
        total = 0.0
        indices = [int(i) for i in config.active_indices()]
        for pos, i in enumerate(indices):
            xi, yi, ri = float(config.xs[i]), float(config.ys[i]), float(config.rs[i])
            for j in indices[pos + 1 :]:
                total += self.pair_energy(
                    xi, yi, ri, float(config.xs[j]), float(config.ys[j]), float(config.rs[j])
                )
        return total


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
