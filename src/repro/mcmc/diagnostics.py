"""Chain diagnostics: acceptance statistics, traces, convergence, ESS.

The paper reports per-move rejection rates (feeding the speculative-move
model's ``p_r``), iterations-to-convergence (Table I) and relies on
"allow the chain to reach equilibrium" judgements.  Convergence
detection is famously unsolved (§II acknowledges this); the detector
here is an explicit, documented heuristic: the first recorded iteration
at which the posterior trace enters the tolerance band of its final
plateau and never leaves it again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ChainError
from repro.mcmc.spec import MoveType

__all__ = [
    "AcceptanceStats",
    "Trace",
    "convergence_iteration",
    "effective_sample_size",
]


@dataclass
class AcceptanceStats:
    """Per-move-type counters of proposals and acceptances.

    ``generated`` counts iterations where the type was drawn;
    ``proposed`` those that passed generation/validity; ``accepted``
    those applied.  The rejection rate the speculative-moves model needs
    is ``1 - accepted / generated`` (an ungenerable proposal is a
    rejection of the iteration).
    """

    generated: Dict[MoveType, int] = field(
        default_factory=lambda: {mt: 0 for mt in MoveType}
    )
    proposed: Dict[MoveType, int] = field(
        default_factory=lambda: {mt: 0 for mt in MoveType}
    )
    accepted: Dict[MoveType, int] = field(
        default_factory=lambda: {mt: 0 for mt in MoveType}
    )

    def record(self, move_type: MoveType, proposed: bool, accepted: bool) -> None:
        self.generated[move_type] += 1
        if proposed:
            self.proposed[move_type] += 1
        if accepted:
            self.accepted[move_type] += 1

    # -- aggregates ---------------------------------------------------------
    def total_iterations(self) -> int:
        return sum(self.generated.values())

    def total_accepted(self) -> int:
        return sum(self.accepted.values())

    def acceptance_rate(self, move_type: Optional[MoveType] = None) -> float:
        """Accepted / generated, overall or for one move type (0 if unused)."""
        if move_type is None:
            g = self.total_iterations()
            return self.total_accepted() / g if g else 0.0
        g = self.generated[move_type]
        return self.accepted[move_type] / g if g else 0.0

    def rejection_rate(self, move_type: Optional[MoveType] = None) -> float:
        """1 − acceptance rate: the ``p_r`` of the speculative-move model."""
        return 1.0 - self.acceptance_rate(move_type)

    def rejection_rate_for(self, move_types: Sequence[MoveType]) -> float:
        """Pooled rejection rate over a move class (``p_gr`` / ``p_lr``)."""
        g = sum(self.generated[mt] for mt in move_types)
        a = sum(self.accepted[mt] for mt in move_types)
        return 1.0 - (a / g) if g else 1.0

    def merge(self, other: "AcceptanceStats") -> None:
        for mt in MoveType:
            self.generated[mt] += other.generated[mt]
            self.proposed[mt] += other.proposed[mt]
            self.accepted[mt] += other.accepted[mt]


@dataclass
class Trace:
    """A scalar chain trace sampled at known iteration numbers."""

    iterations: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, iteration: int, value: float) -> None:
        if self.iterations and iteration < self.iterations[-1]:
            raise ChainError(
                f"trace iterations must be non-decreasing, got {iteration} after "
                f"{self.iterations[-1]}"
            )
        self.iterations.append(iteration)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def as_arrays(self):
        return np.asarray(self.iterations), np.asarray(self.values, dtype=float)

    def extend(self, other: "Trace") -> None:
        for it, v in zip(other.iterations, other.values):
            self.record(it, v)


def convergence_iteration(
    trace: Trace,
    tail_fraction: float = 0.25,
    tolerance_sigmas: float = 4.0,
    min_tolerance: float = 1e-9,
) -> Optional[int]:
    """Iteration at which the trace settles onto its final plateau.

    The plateau level and scale are estimated from the last
    *tail_fraction* of the trace; the convergence point is the first
    recorded iteration from which the trace stays within
    ``tolerance_sigmas × tail std`` (at least *min_tolerance*) of the
    plateau mean.  Returns ``None`` when the trace never settles (the
    tail itself violates its own band) or has fewer than 4 points.
    """
    if not (0.0 < tail_fraction <= 1.0):
        raise ChainError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    n = len(trace)
    if n < 4:
        return None
    _, values = trace.as_arrays()
    tail_start = max(1, int(n * (1.0 - tail_fraction)))
    tail = values[tail_start:]
    level = float(tail.mean())
    tol = max(float(tail.std()) * tolerance_sigmas, min_tolerance)
    inside = np.abs(values - level) <= tol
    if not inside[-1]:
        return None
    # First index from which every subsequent point is inside the band.
    outside = np.flatnonzero(~inside)
    first_settled = 0 if outside.size == 0 else int(outside[-1]) + 1
    if first_settled >= n:
        return None
    return int(trace.iterations[first_settled])


def effective_sample_size(values: Sequence[float], max_lag: Optional[int] = None) -> float:
    """Autocorrelation-based ESS (initial positive sequence estimator).

    ESS = n / (1 + 2 Σ_k ρ_k), summing autocorrelations until the sum of
    an adjacent pair turns negative (Geyer's initial positive sequence).
    """
    v = np.asarray(values, dtype=float)
    n = v.size
    if n < 4:
        return float(n)
    v = v - v.mean()
    var = float(np.dot(v, v)) / n
    if var == 0.0:
        return float(n)
    if max_lag is None:
        max_lag = n - 2
    max_lag = min(max_lag, n - 2)

    # FFT autocorrelation for speed on long traces.
    size = 1
    while size < 2 * n:
        size *= 2
    f = np.fft.rfft(v, size)
    acov = np.fft.irfft(f * np.conjugate(f), size)[: max_lag + 1].real / n
    rho = acov / acov[0]

    s = 0.0
    k = 1
    while k + 1 <= max_lag:
        pair = rho[k] + rho[k + 1]
        if pair < 0.0:
            break
        s += pair
        k += 2
    ess = n / (1.0 + 2.0 * s)
    return float(min(max(ess, 1.0), n))
