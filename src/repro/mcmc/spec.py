"""Model and move-set specification.

Two frozen dataclasses carry every tunable of the case-study model:

* :class:`ModelSpec` — the Bayesian model (priors + likelihood shape).
* :class:`MoveConfig` — proposal mechanics (move weights, step sizes).

Both are plain picklable values so partition workers can be handed the
complete problem description in one message (cf. the mpi4py guidance on
communicating small picklable objects and large arrays separately).

The split of the move set into global and local moves (§V of the paper)
is encoded here once — `LOCAL_MOVES` / `GLOBAL_MOVES` — and every other
component (phase scheduling, partition runners, theory model) derives
from it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "MoveType",
    "LOCAL_MOVES",
    "GLOBAL_MOVES",
    "ModelSpec",
    "MoveConfig",
]


class MoveType(enum.Enum):
    """The seven move types of the case study (§III)."""

    BIRTH = "birth"
    DEATH = "death"
    SPLIT = "split"
    MERGE = "merge"
    REPLACE = "replace"
    TRANSLATE = "translate"
    RESIZE = "resize"


#: Moves whose impact is spatially local and that leave "global" model
#: properties (the feature count) unchanged — the paper's ``Ml``.
LOCAL_MOVES: FrozenSet[MoveType] = frozenset({MoveType.TRANSLATE, MoveType.RESIZE})

#: Moves that alter global properties or range over the whole image —
#: the paper's ``Mg`` = {add, delete, merge, split, replace}.
GLOBAL_MOVES: FrozenSet[MoveType] = frozenset(
    {MoveType.BIRTH, MoveType.DEATH, MoveType.SPLIT, MoveType.MERGE, MoveType.REPLACE}
)


@dataclass(frozen=True)
class ModelSpec:
    """The Bayesian model for circle detection.

    Attributes
    ----------
    width, height:
        Image dimensions (pixels); the position prior is uniform over
        this rectangle.
    expected_count:
        λ of the Poisson prior on the number of circles.  For
        partitioned runs this is re-estimated per partition with
        eq. (5) (see :mod:`repro.imaging.density`).
    radius_mean, radius_std:
        Gaussian radius prior (truncated to [radius_min, radius_max]).
    radius_min, radius_max:
        Hard radius bounds.  ``radius_max`` also bounds the overlap
        interaction range used in partition-safety margins.
    overlap_gamma:
        Strength of the pairwise overlap penalty
        ``-overlap_gamma * lens_area(i, j)`` (per unit area).
    likelihood_beta:
        Inverse noise scale of the Gaussian pixel likelihood
        ``-beta * Σ (I_p - M_p)²``.
    foreground, background:
        Model intensities rendered for covered / uncovered pixels.
    """

    width: int
    height: int
    expected_count: float
    radius_mean: float = 10.0
    radius_std: float = 1.5
    radius_min: float = 2.0
    radius_max: float = 20.0
    overlap_gamma: float = 0.5
    likelihood_beta: float = 4.0
    foreground: float = 0.9
    background: float = 0.05

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"model dimensions must be positive, got {self.width}x{self.height}"
            )
        if self.expected_count <= 0:
            raise ConfigurationError(
                f"expected_count must be positive, got {self.expected_count}"
            )
        if not (0 < self.radius_min <= self.radius_mean <= self.radius_max):
            raise ConfigurationError(
                "need 0 < radius_min <= radius_mean <= radius_max, got "
                f"{self.radius_min}, {self.radius_mean}, {self.radius_max}"
            )
        if self.radius_std <= 0:
            raise ConfigurationError(f"radius_std must be positive, got {self.radius_std}")
        if self.overlap_gamma < 0 or self.likelihood_beta <= 0:
            raise ConfigurationError(
                "overlap_gamma must be >= 0 and likelihood_beta > 0, got "
                f"{self.overlap_gamma}, {self.likelihood_beta}"
            )
        if not (0.0 <= self.background < self.foreground <= 1.0):
            raise ConfigurationError(
                f"need 0 <= background < foreground <= 1, got "
                f"{self.background}, {self.foreground}"
            )

    @property
    def area(self) -> float:
        """Image area — the normaliser of the uniform position prior."""
        return float(self.width * self.height)

    def with_expected_count(self, expected_count: float) -> "ModelSpec":
        """Copy with a new Poisson mean (per-partition re-estimation)."""
        return replace(self, expected_count=expected_count)

    def with_bounds(self, width: int, height: int) -> "ModelSpec":
        """Copy resized to a sub-image (intelligent/blind partitioning)."""
        return replace(self, width=width, height=height)


@dataclass(frozen=True)
class MoveConfig:
    """Proposal mechanics.

    Attributes
    ----------
    weights:
        Relative proposal weights per :class:`MoveType`.  The paper's
        experiment uses 60 % local moves (``qg = 0.4``).
    translate_step:
        Max displacement of a translate proposal (uniform in a disc of
        this radius — bounded so partition-safety margins are exact).
    resize_step:
        Max radius change of a resize proposal (uniform in ±step).
    split_max_separation:
        Max half-separation *d* of a split; merge partners must lie
        within ``2 * split_max_separation`` of each other.
    proposal_batch:
        Multiproposal round width K.  0 (default) keeps the classic
        one-proposal-per-step kernel; K >= 1 advances every chain in
        K-way batched rounds (first acceptance in draw order wins —
        identical in law to K sequential MH steps with early commit).
        K = 1 is the single-proposal chain bit-for-bit, but routed
        through the batched engine — the parity suite's hard gate.
        Changing this changes RNG consumption (hence results) for
        K > 1, so it is part of the engine request key.
    """

    weights: Mapping[MoveType, float] = field(
        default_factory=lambda: {
            MoveType.BIRTH: 0.10,
            MoveType.DEATH: 0.10,
            MoveType.SPLIT: 0.06,
            MoveType.MERGE: 0.06,
            MoveType.REPLACE: 0.08,
            MoveType.TRANSLATE: 0.30,
            MoveType.RESIZE: 0.30,
        }
    )
    translate_step: float = 3.0
    resize_step: float = 1.5
    split_max_separation: float = 12.0
    proposal_batch: int = 0

    def __post_init__(self) -> None:
        w = dict(self.weights)
        for mt in MoveType:
            if mt not in w:
                raise ConfigurationError(f"missing weight for move type {mt.value}")
            if w[mt] < 0 or not math.isfinite(w[mt]):
                raise ConfigurationError(
                    f"weight for {mt.value} must be finite and >= 0, got {w[mt]}"
                )
        total = sum(w.values())
        if total <= 0:
            raise ConfigurationError("move weights must sum to a positive value")
        object.__setattr__(self, "weights", {mt: w[mt] / total for mt in MoveType})
        if self.translate_step <= 0 or self.resize_step <= 0:
            raise ConfigurationError("translate_step and resize_step must be positive")
        if self.split_max_separation <= 0:
            raise ConfigurationError("split_max_separation must be positive")
        if not isinstance(self.proposal_batch, int) or self.proposal_batch < 0:
            raise ConfigurationError(
                f"proposal_batch must be a non-negative int, got {self.proposal_batch!r}"
            )

    # -- derived quantities --------------------------------------------------
    @property
    def qg(self) -> float:
        """Probability that an arbitrary move is global — the paper's ``qg``."""
        return sum(self.weights[mt] for mt in GLOBAL_MOVES)

    @property
    def ql(self) -> float:
        """Probability that an arbitrary move is local (= 1 - qg)."""
        return sum(self.weights[mt] for mt in LOCAL_MOVES)

    def local_weights(self) -> Dict[MoveType, float]:
        """Weights renormalised over the local move set (``Ml`` phases)."""
        total = self.ql
        if total <= 0:
            raise ConfigurationError("move config has no local moves")
        return {mt: self.weights[mt] / total for mt in LOCAL_MOVES}

    def global_weights(self) -> Dict[MoveType, float]:
        """Weights renormalised over the global move set (``Mg`` phases)."""
        total = self.qg
        if total <= 0:
            raise ConfigurationError("move config has no global moves")
        return {mt: self.weights[mt] / total for mt in GLOBAL_MOVES}

    def local_reach(self, spec: ModelSpec) -> float:
        """Worst-case spatial reach of one local move.

        A feature at (x, y, r) subjected to a local move can influence
        prior/likelihood terms only within
        ``r + translate_step + resize_step + radius_max + 1`` of its
        centre (displacement + growth + overlap partner radius + one
        pixel of raster slack).  Features whose disc inflated by this
        margin stays inside a partition are safe to modify concurrently
        with any move in another partition (§V's "sufficiently distant"
        made precise; proof sketch in DESIGN.md §5).
        """
        return self.translate_step + self.resize_step + spec.radius_max + 1.0

    def with_qg(self, qg: float) -> "MoveConfig":
        """Copy rescaled so the global-move probability equals *qg*.

        Keeps relative weights within each class; used by benchmarks to
        sweep the ``qg`` axis of Fig. 1.
        """
        if not (0.0 < qg < 1.0):
            raise ConfigurationError(f"qg must be in (0, 1), got {qg}")
        cur_g, cur_l = self.qg, self.ql
        if cur_g <= 0 or cur_l <= 0:
            raise ConfigurationError("cannot rescale a config missing a move class")
        w = {
            mt: (self.weights[mt] / cur_g * qg if mt in GLOBAL_MOVES
                 else self.weights[mt] / cur_l * (1.0 - qg))
            for mt in MoveType
        }
        return replace(self, weights=w)
