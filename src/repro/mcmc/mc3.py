"""Metropolis-coupled MCMC — (MC)³ (§IV, the paper's refs. [9], [10]).

The conventional parallel-MCMC technique the paper positions itself
against: run several chains at different temperatures; only the cold
chain is sampled; periodically propose swapping the states of two
chains.  Heated chains flatten the posterior (target ∝ π^(1/T)) and so
traverse the state space freely, letting the cold chain escape local
optima through swaps.

Implemented here as a *baseline / related-work comparator*: it improves
convergence rate, not iteration throughput — the quantity the paper's
own methods target — and the benchmark suite uses it to demonstrate
that distinction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.mcmc.diagnostics import AcceptanceStats, Trace
from repro.mcmc.kernel import multiproposal_step, trial_kernel_enabled
from repro.mcmc.moves import MoveGenerator, NullMove
from repro.mcmc.posterior import PosteriorState
from repro.utils.rng import SeedLike, coerce_stream

__all__ = ["MetropolisCoupledChains", "MC3Result"]


@dataclass
class MC3Result:
    """Summary of an (MC)³ run."""

    iterations: int
    swap_attempts: int
    swap_accepts: int
    cold_posterior_trace: Trace
    cold_stats: AcceptanceStats

    @property
    def swap_rate(self) -> float:
        return self.swap_accepts / self.swap_attempts if self.swap_attempts else 0.0


class MetropolisCoupledChains:
    """k coupled chains over independent copies of the posterior state.

    Parameters
    ----------
    posts:
        One posterior state per chain; index 0 is the cold chain.  All
        must share the same model (they exchange *states*, so their
        targets must agree up to temperature).
    gens:
        One move generator per chain (usually identical configs).
    temperatures:
        Ladder with ``temperatures[0] == 1.0``, strictly increasing.
        The conventional choice is ``1 + Δ·i`` ("heated" chains).
    swap_every:
        Number of per-chain iterations between swap proposals.
    """

    def __init__(
        self,
        posts: Sequence[PosteriorState],
        gens: Sequence[MoveGenerator],
        temperatures: Sequence[float],
        swap_every: int = 50,
        seed: SeedLike = None,
        record_every: int = 100,
    ) -> None:
        if not (len(posts) == len(gens) == len(temperatures)):
            raise ConfigurationError(
                f"need equal numbers of states/generators/temperatures, got "
                f"{len(posts)}/{len(gens)}/{len(temperatures)}"
            )
        if len(posts) < 2:
            raise ConfigurationError("(MC)^3 needs at least two chains")
        if abs(temperatures[0] - 1.0) > 1e-12:
            raise ConfigurationError("the first (cold) chain must have T = 1")
        for a, b in zip(temperatures, temperatures[1:]):
            if b <= a:
                raise ConfigurationError("temperatures must be strictly increasing")
        if swap_every <= 0:
            raise ConfigurationError(f"swap_every must be positive, got {swap_every}")
        self.posts: List[PosteriorState] = list(posts)
        self.gens = list(gens)
        self.temperatures = [float(t) for t in temperatures]
        self.swap_every = swap_every
        root = coerce_stream(seed)
        self._chain_streams = root.spawn(len(posts))
        self._swap_stream = root.spawn_one()
        self.record_every = max(1, record_every)
        self.iteration = 0
        self.swap_attempts = 0
        self.swap_accepts = 0
        self.cold_stats = AcceptanceStats()
        self.cold_posterior_trace = Trace()

    # -- tempered kernel -----------------------------------------------------
    def _tempered_step(self, k: int) -> None:
        """One Metropolis–Hastings iteration of chain *k* at temperature
        T_k: the posterior delta is divided by T_k, proposal terms are
        not (they are densities, not targets)."""
        post, gen, stream = self.posts[k], self.gens[k], self._chain_streams[k]
        move = gen.generate(post, stream)
        if isinstance(move, NullMove) or not move.is_valid(post):
            if k == 0:
                self.cold_stats.record(move.move_type, proposed=False, accepted=False)
            return
        log_fwd = move.log_forward_density(post)
        # Trial protocol: heated chains reject most proposals too, so
        # pricing without mutation saves the same unapply rasterisations
        # the cold kernel avoids.  Only the mutation protocol branches;
        # the tempered acceptance arithmetic is shared.
        use_trial = trial_kernel_enabled()
        delta = move.price(post) if use_trial else move.apply(post)
        log_rev = move.log_reverse_density(post)
        log_alpha = (
            delta / self.temperatures[k] + log_rev - log_fwd + move.log_jacobian()
        )
        accept = log_alpha >= 0.0 or math.log(stream.random() + 1e-300) < log_alpha
        if use_trial:
            if accept:
                move.commit(post)
            else:
                move.rollback(post)
        elif not accept:
            move.unapply(post)
        if k == 0:
            self.cold_stats.record(move.move_type, proposed=True, accepted=accept)

    def _attempt_swap(self) -> None:
        """Propose exchanging the states of two randomly chosen chains,
        accepted with the modified Metropolis–Hastings ratio

            log α = (1/T_i − 1/T_j) · (log π(x_j) − log π(x_i))
        """
        k = len(self.posts)
        i = self._swap_stream.integers(0, k - 1)
        j = i + 1  # adjacent-chain swaps mix the ladder best
        self.swap_attempts += 1
        lp_i = self.posts[i].log_posterior
        lp_j = self.posts[j].log_posterior
        log_alpha = (1.0 / self.temperatures[i] - 1.0 / self.temperatures[j]) * (
            lp_j - lp_i
        )
        if log_alpha >= 0.0 or math.log(self._swap_stream.random() + 1e-300) < log_alpha:
            self.posts[i], self.posts[j] = self.posts[j], self.posts[i]
            self.swap_accepts += 1

    def _tempered_round(self, k: int, max_width: int) -> int:
        """One batched multiproposal round of chain *k* at temperature
        T_k; returns iterations consumed (first acceptance wins, so the
        per-chain law matches :meth:`_tempered_step` exactly)."""
        width = min(self.gens[k].move_config.proposal_batch, max_width)
        round_ = multiproposal_step(
            self.posts[k],
            self.gens[k],
            self._chain_streams[k],
            max(1, width),
            temperature=self.temperatures[k],
        )
        if k == 0:
            for res in round_.results:
                self.cold_stats.record(res.move_type, res.proposed, res.accepted)
        return round_.consumed

    def _run_multiproposal(self, iterations: int) -> MC3Result:
        """Round-based driver used when a generator opts into batched
        multiproposal rounds (``move_config.proposal_batch >= 1``).

        Chains advance independently between synchronisation boundaries
        (swap and trace points), each in rounds truncated so every chain
        lands exactly on the boundary.  At width 1 this reproduces
        :meth:`run`'s step loop bit-for-bit: per-chain RNG streams are
        private, so de-interleaving the chains between boundaries cannot
        change any draw, state, or recorded value.
        """
        target = self.iteration + iterations
        next_swap = (self.iteration // self.swap_every + 1) * self.swap_every
        next_record = (self.iteration // self.record_every + 1) * self.record_every
        while self.iteration < target:
            boundary = min(target, next_swap, next_record)
            segment = boundary - self.iteration
            for k in range(len(self.posts)):
                done = 0
                while done < segment:
                    done += self._tempered_round(k, segment - done)
            self.iteration = boundary
            if self.iteration == next_swap:
                self._attempt_swap()
                next_swap += self.swap_every
            if self.iteration == next_record:
                self.cold_posterior_trace.record(
                    self.iteration, self.posts[0].log_posterior
                )
                next_record += self.record_every
        return MC3Result(
            iterations=self.iteration,
            swap_attempts=self.swap_attempts,
            swap_accepts=self.swap_accepts,
            cold_posterior_trace=self.cold_posterior_trace,
            cold_stats=self.cold_stats,
        )

    # -- driver ------------------------------------------------------------------
    def run(self, iterations: int) -> MC3Result:
        """Advance every chain by *iterations* steps with periodic swaps."""
        if iterations < 0:
            raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
        if any(g.move_config.proposal_batch >= 1 for g in self.gens):
            return self._run_multiproposal(iterations)
        for _ in range(iterations):
            for k in range(len(self.posts)):
                self._tempered_step(k)
            self.iteration += 1
            if self.iteration % self.swap_every == 0:
                self._attempt_swap()
            if self.iteration % self.record_every == 0:
                self.cold_posterior_trace.record(
                    self.iteration, self.posts[0].log_posterior
                )
        return MC3Result(
            iterations=self.iteration,
            swap_attempts=self.swap_attempts,
            swap_accepts=self.swap_accepts,
            cold_posterior_trace=self.cold_posterior_trace,
            cold_stats=self.cold_stats,
        )

    @property
    def cold_chain(self) -> PosteriorState:
        """The T = 1 chain — the only one whose samples are used."""
        return self.posts[0]
