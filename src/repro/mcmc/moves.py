"""Move proposals and their reversible-jump bookkeeping.

Each move type is a small single-use object created by
:class:`MoveGenerator` for one iteration.  A move knows how to:

* validate itself against the current state (``is_valid``),
* report its forward proposal log-density (evaluated *before* applying),
* apply itself to a :class:`~repro.mcmc.posterior.PosteriorState`
  (returning the exact log-posterior delta),
* report the reverse proposal log-density (evaluated *after* applying),
* report the log-Jacobian of its dimension-matching transform, and
* roll itself back (``unapply``), restoring the cached log-posterior
  bit-exactly from the saved pre-move value.

The split/merge pair uses the standard RJMCMC construction: a split of
circle (x, y, r) draws auxiliary variables θ ~ U[0, 2π), d ~ U(0, d_max]
and a ~ U(0, 1) and produces

    c1 = (x + d cosθ, y + d sinθ, r·sqrt(2a))
    c2 = (x − d cosθ, y − d sinθ, r·sqrt(2(1−a)))

which preserves the centroid and the summed squared radius
(r1² + r2² = 2r²); the merge inverts it exactly.  The Jacobian of
(x, y, r, θ, d, a) → (x1, y1, r1, x2, y2, r2) is

    |J| = 4·d·r / sqrt(a(1−a))

(positions contribute 4d via (x, y, d, θ) → (x1, y1, x2, y2); radii
contribute r/sqrt(a(1−a))).

Local moves (translate/resize) use *bounded symmetric* proposals —
uniform in a disc of radius ``translate_step`` / uniform in
``±resize_step`` — so their proposal ratio is exactly 1 and, crucially,
their spatial reach is hard-bounded, which is what makes the partition
safety margin of :meth:`repro.mcmc.spec.MoveConfig.local_reach` exact
rather than probabilistic.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChainError, ConfigurationError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import ModelSpec, MoveConfig, MoveType
from repro.utils.rng import RngStream

__all__ = [
    "MoveContext",
    "Move",
    "NullMove",
    "BirthMove",
    "DeathMove",
    "SplitMove",
    "MergeMove",
    "ReplaceMove",
    "TranslateMove",
    "ResizeMove",
    "MoveGenerator",
]

_TWO_PI = 2.0 * math.pi
_NEG_INF = float("-inf")


@dataclass(frozen=True)
class MoveContext:
    """Shared constants a move needs to price its proposal densities.

    ``log_weights`` are the *mode-renormalised* move-type log-weights of
    the generator that created the move (full / global-only /
    local-only), so forward and reverse densities always price type
    selection within the same mode.
    """

    log_weights: Mapping[MoveType, float]
    log_area: float
    d_max: float

    def log_w(self, mt: MoveType) -> float:
        return self.log_weights[mt]


class Move:
    """Base class; see module docstring for the lifecycle.

    Two execution protocols share the proposal/density methods:

    * **apply/unapply** (legacy): :meth:`apply` mutates everything and
      returns the delta; a rejection pays a full :meth:`unapply` —
      including a second disc rasterisation per disc touched.
    * **price/commit/rollback** (trial): :meth:`price` mutates only the
      configuration (so densities and overlap energies evaluate against
      bit-identical state) while coverage counts and the cached
      posterior stay untouched; :meth:`commit` finalises an acceptance
      from the cached rasterisation masks, :meth:`rollback` undoes the
      configuration in O(1) without re-rasterising anything.

    The base implementations fall back to apply/unapply; every concrete
    move class — the RJMCMC split/merge pair included — overrides all
    three with true trial pricing.  ``supports_trial`` advertises which
    protocol a class actually implements (``NullMove`` does not).
    """

    move_type: MoveType
    supports_trial: bool = False

    def is_valid(self, post: PosteriorState) -> bool:
        """Pre-application validity (bounds, truncations, constraints)."""
        raise NotImplementedError

    def log_forward_density(self, post: PosteriorState) -> float:
        """log q(move | current state); evaluate before :meth:`apply`."""
        raise NotImplementedError

    def apply(self, post: PosteriorState) -> float:
        """Mutate *post*; return the log-posterior delta."""
        raise NotImplementedError

    def log_reverse_density(self, post: PosteriorState) -> float:
        """log q(inverse move | new state); evaluate after :meth:`apply`
        (or :meth:`price` — the configuration state it reads is the
        same)."""
        raise NotImplementedError

    def log_jacobian(self) -> float:
        """log |J| of the dimension-matching transform (0 for fixed-d moves)."""
        return 0.0

    def unapply(self, post: PosteriorState) -> None:
        """Undo :meth:`apply`, restoring state and cached posterior."""
        raise NotImplementedError

    # -- trial protocol (default: fall back to apply/unapply) ---------------
    def price(self, post: PosteriorState) -> float:
        """Price the move; return the exact log-posterior delta.

        Must be followed by exactly one of :meth:`commit` /
        :meth:`rollback`.  The fallback simply applies the move (so
        commit is a no-op and rollback is a full unapply).
        """
        return self.apply(post)

    def commit(self, post: PosteriorState) -> None:
        """Finalise an accepted :meth:`price`."""
        return None

    def rollback(self, post: PosteriorState) -> None:
        """Undo a rejected :meth:`price`."""
        self.unapply(post)

    def reapply(self, post: PosteriorState) -> None:
        """Redo this move's configuration mutations after a rollback.

        The multiproposal round prices every candidate and rolls each
        back before selecting; the winner's config ops are then replayed
        in the exact order :meth:`price` issued them.  Because rollback
        restored the free list (LIFO) and the spatial hash to their
        pre-round state, replaying re-lands every circle in the same
        slot — enforced by the index-identity checks below.
        """
        raise NotImplementedError


class NullMove(Move):
    """A proposal that could not be generated (e.g. death on an empty
    configuration).  Counts as a rejected iteration, per standard
    practice, so move-class probabilities stay as configured."""

    def __init__(self, intended: MoveType) -> None:
        self.move_type = intended

    def is_valid(self, post: PosteriorState) -> bool:
        return False

    def log_forward_density(self, post: PosteriorState) -> float:  # pragma: no cover
        return _NEG_INF

    def apply(self, post: PosteriorState) -> float:  # pragma: no cover
        raise ChainError("NullMove cannot be applied")

    def log_reverse_density(self, post: PosteriorState) -> float:  # pragma: no cover
        return _NEG_INF

    def unapply(self, post: PosteriorState) -> None:  # pragma: no cover
        raise ChainError("NullMove cannot be unapplied")


class BirthMove(Move):
    """Add a circle at (x, y) with radius r (position uniform, radius
    drawn from the radius prior)."""

    move_type = MoveType.BIRTH

    def __init__(self, x: float, y: float, r: float, ctx: MoveContext) -> None:
        self.x, self.y, self.r = x, y, r
        self.ctx = ctx
        self._idx: Optional[int] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        return post.centre_in_bounds(self.x, self.y) and post.radius_in_bounds(self.r)

    def log_forward_density(self, post: PosteriorState) -> float:
        return (
            self.ctx.log_w(MoveType.BIRTH)
            - self.ctx.log_area
            + post.radius_prior.log_pdf(self.r)
        )

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        self._idx, delta = post.insert_circle(self.x, self.y, self.r)
        return delta

    def log_reverse_density(self, post: PosteriorState) -> float:
        # Reverse = death selecting the new circle among the n current ones.
        return self.ctx.log_w(MoveType.DEATH) - math.log(post.config.n)

    def unapply(self, post: PosteriorState) -> None:
        if self._idx is None:
            raise ChainError("BirthMove.unapply before apply")
        post.delete_circle(self._idx)
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        self._idx, delta = post.trial_insert_circle(self.x, self.y, self.r)
        return delta

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._idx is None:
            raise ChainError("BirthMove.rollback before price")
        post.discard_trial()
        post.rollback_insert(self._idx)

    def reapply(self, post: PosteriorState) -> None:
        if self._idx is None:
            raise ChainError("BirthMove.reapply before price")
        if post.config.add(self.x, self.y, self.r) != self._idx:
            raise ChainError("birth reapply landed in a different slot")


class DeathMove(Move):
    """Delete circle *idx* (selected uniformly)."""

    move_type = MoveType.DEATH

    def __init__(self, idx: int, ctx: MoveContext) -> None:
        self.idx = idx
        self.ctx = ctx
        self._removed: Optional[Circle] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        return post.config.is_active(self.idx)

    def log_forward_density(self, post: PosteriorState) -> float:
        return self.ctx.log_w(MoveType.DEATH) - math.log(post.config.n)

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        self._removed, delta = post.delete_circle(self.idx)
        return delta

    def log_reverse_density(self, post: PosteriorState) -> float:
        assert self._removed is not None
        return (
            self.ctx.log_w(MoveType.BIRTH)
            - self.ctx.log_area
            + post.radius_prior.log_pdf(self._removed.r)
        )

    def unapply(self, post: PosteriorState) -> None:
        if self._removed is None:
            raise ChainError("DeathMove.unapply before apply")
        post.insert_circle(self._removed.x, self._removed.y, self._removed.r)
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        self._removed, delta = post.trial_delete_circle(self.idx)
        return delta

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._removed is None:
            raise ChainError("DeathMove.rollback before price")
        post.discard_trial()
        post.rollback_delete(self._removed)

    def reapply(self, post: PosteriorState) -> None:
        if self._removed is None:
            raise ChainError("DeathMove.reapply before price")
        post.config.remove(self.idx)


class ReplaceMove(Move):
    """Delete circle *idx* and add a fresh one elsewhere (dimension
    preserved; the paper lists 'replace' among the global moves because
    the new position ranges over the whole image)."""

    move_type = MoveType.REPLACE

    def __init__(self, idx: int, x: float, y: float, r: float, ctx: MoveContext) -> None:
        self.idx = idx
        self.x, self.y, self.r = x, y, r
        self.ctx = ctx
        self._removed: Optional[Circle] = None
        self._new_idx: Optional[int] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        return (
            post.config.is_active(self.idx)
            and post.centre_in_bounds(self.x, self.y)
            and post.radius_in_bounds(self.r)
        )

    def log_forward_density(self, post: PosteriorState) -> float:
        return (
            self.ctx.log_w(MoveType.REPLACE)
            - math.log(post.config.n)
            - self.ctx.log_area
            + post.radius_prior.log_pdf(self.r)
        )

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        self._removed, d1 = post.delete_circle(self.idx)
        self._new_idx, d2 = post.insert_circle(self.x, self.y, self.r)
        return d1 + d2

    def log_reverse_density(self, post: PosteriorState) -> float:
        assert self._removed is not None
        return (
            self.ctx.log_w(MoveType.REPLACE)
            - math.log(post.config.n)
            - self.ctx.log_area
            + post.radius_prior.log_pdf(self._removed.r)
        )

    def unapply(self, post: PosteriorState) -> None:
        if self._removed is None or self._new_idx is None:
            raise ChainError("ReplaceMove.unapply before apply")
        post.delete_circle(self._new_idx)
        post.insert_circle(self._removed.x, self._removed.y, self._removed.r)
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        self._removed, d1 = post.trial_delete_circle(self.idx)
        self._new_idx, d2 = post.trial_insert_circle(self.x, self.y, self.r)
        return d1 + d2

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._removed is None or self._new_idx is None:
            raise ChainError("ReplaceMove.rollback before price")
        post.discard_trial()
        # Same config-op order as unapply: drop the new circle, then
        # restore the old one into its recycled slot.
        post.rollback_insert(self._new_idx)
        post.rollback_delete(self._removed)

    def reapply(self, post: PosteriorState) -> None:
        if self._removed is None or self._new_idx is None:
            raise ChainError("ReplaceMove.reapply before price")
        post.config.remove(self.idx)
        if post.config.add(self.x, self.y, self.r) != self._new_idx:
            raise ChainError("replace reapply landed in a different slot")


class SplitMove(Move):
    """Split circle *idx* into two circles (see module docstring)."""

    move_type = MoveType.SPLIT

    def __init__(
        self,
        idx: int,
        original: Circle,
        theta: float,
        d: float,
        a: float,
        ctx: MoveContext,
    ) -> None:
        self.idx = idx
        self.original = original
        self.theta, self.d, self.a = theta, d, a
        self.ctx = ctx
        dx, dy = d * math.cos(theta), d * math.sin(theta)
        self.c1 = Circle(original.x + dx, original.y + dy, original.r * math.sqrt(2.0 * a))
        self.c2 = Circle(
            original.x - dx, original.y - dy, original.r * math.sqrt(2.0 * (1.0 - a))
        )
        self._i1: Optional[int] = None
        self._i2: Optional[int] = None
        self._removed: Optional[Circle] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        return (
            post.config.is_active(self.idx)
            and 0.0 < self.d <= self.ctx.d_max
            and 0.0 < self.a < 1.0
            and post.centre_in_bounds(self.c1.x, self.c1.y)
            and post.centre_in_bounds(self.c2.x, self.c2.y)
            and post.radius_in_bounds(self.c1.r)
            and post.radius_in_bounds(self.c2.r)
        )

    def log_forward_density(self, post: PosteriorState) -> float:
        # Select the circle (1/n), then θ, d, a from their uniform densities.
        return (
            self.ctx.log_w(MoveType.SPLIT)
            - math.log(post.config.n)
            - math.log(_TWO_PI)
            - math.log(self.ctx.d_max)
        )

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        self._removed, d0 = post.delete_circle(self.idx)
        self._i1, d1 = post.insert_circle(self.c1.x, self.c1.y, self.c1.r)
        self._i2, d2 = post.insert_circle(self.c2.x, self.c2.y, self.c2.r)
        return d0 + d1 + d2

    def log_reverse_density(self, post: PosteriorState) -> float:
        # Reverse = merge choosing the (c1, c2) pair in the post-split state.
        assert self._i1 is not None and self._i2 is not None
        return _log_merge_pair_density(post, self._i1, self._i2, self.ctx)

    def log_jacobian(self) -> float:
        return math.log(
            4.0 * self.d * self.original.r / math.sqrt(self.a * (1.0 - self.a))
        )

    def unapply(self, post: PosteriorState) -> None:
        if self._removed is None or self._i1 is None or self._i2 is None:
            raise ChainError("SplitMove.unapply before apply")
        # Reverse allocation order so the free-list (LIFO) hands the
        # original circle its original slot back — index identity must
        # survive a rollback (the speculative executor re-applies moves).
        post.delete_circle(self._i2)
        post.delete_circle(self._i1)
        restored, _ = post.insert_circle(self._removed.x, self._removed.y, self._removed.r)
        if restored != self.idx:
            raise ChainError(
                f"split rollback restored index {restored}, expected {self.idx}"
            )
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        # Same primitive order as apply: the second insert's overlap
        # energy and pending-mask pricing must see the first insert.
        self._removed, d0 = post.trial_delete_circle(self.idx)
        self._i1, d1 = post.trial_insert_circle(self.c1.x, self.c1.y, self.c1.r)
        self._i2, d2 = post.trial_insert_circle(self.c2.x, self.c2.y, self.c2.r)
        return d0 + d1 + d2

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._removed is None or self._i1 is None or self._i2 is None:
            raise ChainError("SplitMove.rollback before price")
        post.discard_trial()
        # Same config-op order as unapply (LIFO free-list, index identity).
        post.rollback_insert(self._i2)
        post.rollback_insert(self._i1)
        restored = post.rollback_delete(self._removed)
        if restored != self.idx:
            raise ChainError(
                f"split rollback restored index {restored}, expected {self.idx}"
            )

    def reapply(self, post: PosteriorState) -> None:
        if self._removed is None or self._i1 is None or self._i2 is None:
            raise ChainError("SplitMove.reapply before price")
        post.config.remove(self.idx)
        i1 = post.config.add(self.c1.x, self.c1.y, self.c1.r)
        i2 = post.config.add(self.c2.x, self.c2.y, self.c2.r)
        if i1 != self._i1 or i2 != self._i2:
            raise ChainError("split reapply landed in different slots")


class MergeMove(Move):
    """Merge circles *i* and *j* into their exact split-inverse."""

    move_type = MoveType.MERGE

    def __init__(self, i: int, j: int, ci: Circle, cj: Circle, ctx: MoveContext) -> None:
        self.i, self.j = i, j
        self.ci, self.cj = ci, cj
        self.ctx = ctx
        self.merged = Circle(
            0.5 * (ci.x + cj.x),
            0.5 * (ci.y + cj.y),
            math.sqrt(0.5 * (ci.r * ci.r + cj.r * cj.r)),
        )
        # Recover the split's auxiliary variables (needed for the Jacobian
        # and to confirm the pair lies in the split proposal's support).
        self.d = 0.5 * ci.distance_to(cj)
        self.a = (ci.r * ci.r) / (2.0 * self.merged.r * self.merged.r)
        self._idx_m: Optional[int] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        return (
            self.i != self.j
            and post.config.is_active(self.i)
            and post.config.is_active(self.j)
            and 0.0 < self.d <= self.ctx.d_max
            and 0.0 < self.a < 1.0
            and post.centre_in_bounds(self.merged.x, self.merged.y)
            and post.radius_in_bounds(self.merged.r)
        )

    def log_forward_density(self, post: PosteriorState) -> float:
        return _log_merge_pair_density(post, self.i, self.j, self.ctx)

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        _, d0 = post.delete_circle(self.i)
        _, d1 = post.delete_circle(self.j)
        self._idx_m, d2 = post.insert_circle(self.merged.x, self.merged.y, self.merged.r)
        return d0 + d1 + d2

    def log_reverse_density(self, post: PosteriorState) -> float:
        # Reverse = split selecting the merged circle in the post state.
        return (
            self.ctx.log_w(MoveType.SPLIT)
            - math.log(post.config.n)
            - math.log(_TWO_PI)
            - math.log(self.ctx.d_max)
        )

    def log_jacobian(self) -> float:
        # Inverse transform: minus the split's log |J|.
        return -math.log(
            4.0 * self.d * self.merged.r / math.sqrt(self.a * (1.0 - self.a))
        )

    def unapply(self, post: PosteriorState) -> None:
        if self._idx_m is None:
            raise ChainError("MergeMove.unapply before apply")
        # Re-insert in reverse deletion order so the LIFO free list gives
        # ci and cj their original slots back (index identity, see
        # SplitMove.unapply).
        post.delete_circle(self._idx_m)
        rj, _ = post.insert_circle(self.cj.x, self.cj.y, self.cj.r)
        ri, _ = post.insert_circle(self.ci.x, self.ci.y, self.ci.r)
        if ri != self.i or rj != self.j:
            raise ChainError(
                f"merge rollback restored indices ({ri}, {rj}), expected "
                f"({self.i}, {self.j})"
            )
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        # Same primitive order as apply; the insert prices against the
        # pending state both deletions left behind.
        _, d0 = post.trial_delete_circle(self.i)
        _, d1 = post.trial_delete_circle(self.j)
        self._idx_m, d2 = post.trial_insert_circle(
            self.merged.x, self.merged.y, self.merged.r
        )
        return d0 + d1 + d2

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._idx_m is None:
            raise ChainError("MergeMove.rollback before price")
        post.discard_trial()
        # Same config-op order as unapply: drop the merged circle, then
        # re-insert in reverse deletion order for index identity.
        post.rollback_insert(self._idx_m)
        rj = post.rollback_delete(self.cj)
        ri = post.rollback_delete(self.ci)
        if ri != self.i or rj != self.j:
            raise ChainError(
                f"merge rollback restored indices ({ri}, {rj}), expected "
                f"({self.i}, {self.j})"
            )

    def reapply(self, post: PosteriorState) -> None:
        if self._idx_m is None:
            raise ChainError("MergeMove.reapply before price")
        post.config.remove(self.i)
        post.config.remove(self.j)
        if post.config.add(self.merged.x, self.merged.y, self.merged.r) != self._idx_m:
            raise ChainError("merge reapply landed in a different slot")


class TranslateMove(Move):
    """Perturb circle *idx*'s centre (local move; symmetric bounded
    proposal — uniform in a disc)."""

    move_type = MoveType.TRANSLATE

    def __init__(
        self,
        idx: int,
        new_x: float,
        new_y: float,
        constraint: Optional[Tuple[Rect, float]] = None,
    ) -> None:
        self.idx = idx
        self.new_x, self.new_y = new_x, new_y
        self.constraint = constraint
        self._old: Optional[Tuple[float, float]] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        if not post.config.is_active(self.idx):
            return False
        if not post.centre_in_bounds(self.new_x, self.new_y):
            return False
        if self.constraint is not None:
            rect, margin = self.constraint
            r = post.config.radius_of(self.idx)
            if not rect.contains_circle(self.new_x, self.new_y, r, margin):
                return False
        return True

    def log_forward_density(self, post: PosteriorState) -> float:
        return 0.0  # symmetric proposal; cancels with reverse

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        self._old, delta = post.move_circle(self.idx, self.new_x, self.new_y)
        return delta

    def log_reverse_density(self, post: PosteriorState) -> float:
        return 0.0

    def unapply(self, post: PosteriorState) -> None:
        if self._old is None:
            raise ChainError("TranslateMove.unapply before apply")
        post.move_circle(self.idx, self._old[0], self._old[1])
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        self._old, delta = post.trial_move_circle(self.idx, self.new_x, self.new_y)
        return delta

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._old is None:
            raise ChainError("TranslateMove.rollback before price")
        post.discard_trial()
        post.rollback_move(self.idx, self._old[0], self._old[1])

    def reapply(self, post: PosteriorState) -> None:
        if self._old is None:
            raise ChainError("TranslateMove.reapply before price")
        post.config.move_center(self.idx, self.new_x, self.new_y)


class ResizeMove(Move):
    """Perturb circle *idx*'s radius (local move; symmetric bounded
    proposal — uniform in ±resize_step)."""

    move_type = MoveType.RESIZE

    def __init__(
        self,
        idx: int,
        new_r: float,
        constraint: Optional[Tuple[Rect, float]] = None,
    ) -> None:
        self.idx = idx
        self.new_r = new_r
        self.constraint = constraint
        self._old_r: Optional[float] = None
        self._prev_lp: float = math.nan

    def is_valid(self, post: PosteriorState) -> bool:
        if not post.config.is_active(self.idx):
            return False
        if not post.radius_in_bounds(self.new_r):
            return False
        if self.constraint is not None:
            rect, margin = self.constraint
            x, y = post.config.position_of(self.idx)
            if not rect.contains_circle(x, y, self.new_r, margin):
                return False
        return True

    def log_forward_density(self, post: PosteriorState) -> float:
        return 0.0

    def apply(self, post: PosteriorState) -> float:
        self._prev_lp = post.log_posterior
        self._old_r, delta = post.resize_circle(self.idx, self.new_r)
        return delta

    def log_reverse_density(self, post: PosteriorState) -> float:
        return 0.0

    def unapply(self, post: PosteriorState) -> None:
        if self._old_r is None:
            raise ChainError("ResizeMove.unapply before apply")
        post.resize_circle(self.idx, self._old_r)
        post.set_log_posterior(self._prev_lp)

    supports_trial = True

    def price(self, post: PosteriorState) -> float:
        self._old_r, delta = post.trial_resize_circle(self.idx, self.new_r)
        return delta

    def commit(self, post: PosteriorState) -> None:
        post.commit_trial()

    def rollback(self, post: PosteriorState) -> None:
        if self._old_r is None:
            raise ChainError("ResizeMove.rollback before price")
        post.discard_trial()
        post.rollback_resize(self.idx, self._old_r)

    def reapply(self, post: PosteriorState) -> None:
        if self._old_r is None:
            raise ChainError("ResizeMove.reapply before price")
        post.config.set_radius(self.idx, self.new_r)


def _log_merge_pair_density(
    post: PosteriorState, i: int, j: int, ctx: MoveContext
) -> float:
    """log q of selecting the unordered pair {i, j} for a merge.

    The generator picks a first circle uniformly (1/n) then a partner
    uniformly among the first circle's neighbours within 2·d_max, so

        q({i, j}) = w_merge · (1/n) · (1/k_i + 1/k_j)

    where k_i is i's neighbour count.  Evaluated on whatever state *post*
    currently holds (pre-move for a merge forward density, post-move for
    a split reverse density).
    """
    n = post.config.n
    if n < 2:
        return _NEG_INF
    xi, yi = post.config.position_of(i)
    xj, yj = post.config.position_of(j)
    reach = 2.0 * ctx.d_max
    k_i = len(post.config.neighbours_within(xi, yi, reach, exclude=i))
    k_j = len(post.config.neighbours_within(xj, yj, reach, exclude=j))
    if k_i == 0 or k_j == 0:
        # Should not happen (they are within reach of each other).
        return _NEG_INF
    return ctx.log_w(MoveType.MERGE) - math.log(n) + math.log(1.0 / k_i + 1.0 / k_j)


class MoveGenerator:
    """Draws one move per iteration according to the configured weights.

    Parameters
    ----------
    spec, move_config:
        Model and proposal parameters.
    mode:
        ``"full"`` — all seven move types at their configured weights
        (the conventional sequential sampler);
        ``"global"`` — only ``Mg`` moves, weights renormalised (the
        periodic sampler's global phases);
        ``"local"`` — only ``Ml`` moves, weights renormalised (the
        periodic sampler's partition phases).
    allowed_indices:
        In local mode, the fixed set of *modifiable* feature indices the
        phase may touch (see :mod:`repro.partitioning.classify`).
        ``None`` means all active circles are eligible.
    constraint:
        Optional ``(rect, margin)``: local proposals whose resulting
        disc inflated by *margin* leaves *rect* are auto-rejected — the
        paper's rule that "no feature may be created or moved such that
        any part of it (or its prior/likelihood considered area)
        intersects with its partition's boundary".
    """

    def __init__(
        self,
        spec: ModelSpec,
        move_config: MoveConfig,
        mode: str = "full",
        allowed_indices: Optional[Sequence[int]] = None,
        constraint: Optional[Tuple[Rect, float]] = None,
    ) -> None:
        if mode not in ("full", "global", "local"):
            raise ConfigurationError(f"unknown generator mode {mode!r}")
        self.spec = spec
        self.move_config = move_config
        self.mode = mode
        if mode == "full":
            weights = dict(move_config.weights)
        elif mode == "global":
            weights = move_config.global_weights()
        else:
            weights = move_config.local_weights()
        self._types: List[MoveType] = sorted(weights, key=lambda mt: mt.value)
        self._probs = np.array([weights[mt] for mt in self._types], dtype=float)
        self._probs /= self._probs.sum()
        self._cum = np.cumsum(self._probs)
        # Plain-list copy for the per-step type draw: bisect on a list
        # beats an np.searchsorted call on a 7-element array and selects
        # identically (tolist() round-trips float64 exactly).
        self._cum_list: List[float] = self._cum.tolist()
        log_weights = {
            mt: (math.log(w) if w > 0 else _NEG_INF) for mt, w in weights.items()
        }
        self.ctx = MoveContext(
            log_weights=log_weights,
            log_area=math.log(spec.area),
            d_max=move_config.split_max_separation,
        )
        self.allowed_indices = (
            None if allowed_indices is None else [int(i) for i in allowed_indices]
        )
        self.constraint = constraint
        if mode != "local" and (allowed_indices is not None or constraint is not None):
            raise ConfigurationError(
                "allowed_indices/constraint only make sense in local mode"
            )

    # -- type selection ----------------------------------------------------
    def _draw_type(self, stream: RngStream) -> MoveType:
        u = stream.random()
        return self._types[bisect.bisect_right(self._cum_list, u)]

    def _draw_index(self, post: PosteriorState, stream: RngStream) -> Optional[int]:
        """Uniformly select an eligible feature index, or None."""
        if self.allowed_indices is not None:
            if not self.allowed_indices:
                return None
            return self.allowed_indices[stream.integers(0, len(self.allowed_indices))]
        n = post.config.n
        if n == 0:
            return None
        # active_list() is the configuration's maintained ascending index
        # list — same selection as indexing np.flatnonzero(active), minus
        # the per-step O(capacity) scan and array allocation.
        idx = post.config.active_list()
        return idx[stream.integers(0, len(idx))]

    # -- proposal generation --------------------------------------------------
    def generate(self, post: PosteriorState, stream: RngStream) -> Move:
        """Generate one move proposal for the current state of *post*."""
        mt = self._draw_type(stream)
        if mt is MoveType.BIRTH:
            return self._gen_birth(post, stream)
        if mt is MoveType.DEATH:
            return self._gen_death(post, stream)
        if mt is MoveType.SPLIT:
            return self._gen_split(post, stream)
        if mt is MoveType.MERGE:
            return self._gen_merge(post, stream)
        if mt is MoveType.REPLACE:
            return self._gen_replace(post, stream)
        if mt is MoveType.TRANSLATE:
            return self._gen_translate(post, stream)
        return self._gen_resize(post, stream)

    def generate_of_type(
        self, move_type: MoveType, post: PosteriorState, stream: RngStream
    ) -> Move:
        """Generate one proposal of a *specific* move class (skipping the
        type draw) — the per-move-class benchmark/diagnostic entry point.
        Proposal parameters are drawn exactly as :meth:`generate` would
        after selecting *move_type*."""
        if move_type is MoveType.BIRTH:
            return self._gen_birth(post, stream)
        if move_type is MoveType.DEATH:
            return self._gen_death(post, stream)
        if move_type is MoveType.SPLIT:
            return self._gen_split(post, stream)
        if move_type is MoveType.MERGE:
            return self._gen_merge(post, stream)
        if move_type is MoveType.REPLACE:
            return self._gen_replace(post, stream)
        if move_type is MoveType.TRANSLATE:
            return self._gen_translate(post, stream)
        if move_type is MoveType.RESIZE:
            return self._gen_resize(post, stream)
        raise ConfigurationError(f"unknown move type {move_type!r}")

    def _gen_birth(self, post: PosteriorState, stream: RngStream) -> Move:
        b = post.bounds
        x = stream.uniform(b.x0, b.x1)
        y = stream.uniform(b.y0, b.y1)
        r = post.radius_prior.sample(stream)
        return BirthMove(x, y, r, self.ctx)

    def _gen_death(self, post: PosteriorState, stream: RngStream) -> Move:
        idx = self._draw_index(post, stream)
        if idx is None:
            return NullMove(MoveType.DEATH)
        return DeathMove(idx, self.ctx)

    def _gen_split(self, post: PosteriorState, stream: RngStream) -> Move:
        idx = self._draw_index(post, stream)
        if idx is None:
            return NullMove(MoveType.SPLIT)
        original = post.config.circle_at(idx)
        theta = stream.uniform(0.0, _TWO_PI)
        # d in (0, d_max]: draw u in [0,1) and invert so 0 is excluded.
        d = (1.0 - stream.random()) * self.ctx.d_max
        a = stream.uniform(1e-9, 1.0 - 1e-9)
        return SplitMove(idx, original, theta, d, a, self.ctx)

    def _gen_merge(self, post: PosteriorState, stream: RngStream) -> Move:
        if post.config.n < 2:
            return NullMove(MoveType.MERGE)
        i = self._draw_index(post, stream)
        if i is None:
            return NullMove(MoveType.MERGE)
        xi, yi = post.config.position_of(i)
        partners = post.config.neighbours_within(
            xi, yi, 2.0 * self.ctx.d_max, exclude=i
        )
        if not partners:
            return NullMove(MoveType.MERGE)
        j = partners[stream.integers(0, len(partners))]
        return MergeMove(i, j, post.config.circle_at(i), post.config.circle_at(j), self.ctx)

    def _gen_replace(self, post: PosteriorState, stream: RngStream) -> Move:
        idx = self._draw_index(post, stream)
        if idx is None:
            return NullMove(MoveType.REPLACE)
        b = post.bounds
        x = stream.uniform(b.x0, b.x1)
        y = stream.uniform(b.y0, b.y1)
        r = post.radius_prior.sample(stream)
        return ReplaceMove(idx, x, y, r, self.ctx)

    def _gen_translate(self, post: PosteriorState, stream: RngStream) -> Move:
        idx = self._draw_index(post, stream)
        if idx is None:
            return NullMove(MoveType.TRANSLATE)
        x, y = post.config.position_of(idx)
        # Uniform in a disc of radius translate_step (symmetric, bounded).
        rho = self.move_config.translate_step * math.sqrt(stream.random())
        phi = stream.uniform(0.0, _TWO_PI)
        return TranslateMove(
            idx, x + rho * math.cos(phi), y + rho * math.sin(phi), self.constraint
        )

    def _gen_resize(self, post: PosteriorState, stream: RngStream) -> Move:
        idx = self._draw_index(post, stream)
        if idx is None:
            return NullMove(MoveType.RESIZE)
        r = post.config.radius_of(idx)
        dr = stream.uniform(-self.move_config.resize_step, self.move_config.resize_step)
        return ResizeMove(idx, r + dr, self.constraint)
