"""The sequential Markov chain driver.

:class:`MarkovChain` owns a posterior state, a move generator and an RNG
stream and advances them iteration by iteration, recording diagnostics.
It is the paper's *sequential implementation* — the baseline every
parallelisation method is measured against — and also the building
block the periodic sampler runs inside each phase (with a
global-only or local-only generator swapped in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ChainError
from repro.geometry.circle import Circle
from repro.mcmc.diagnostics import AcceptanceStats, Trace
from repro.mcmc.kernel import StepResult, metropolis_hastings_step
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.utils.rng import RngStream, SeedLike, coerce_stream
from repro.utils.timing import Stopwatch

__all__ = ["MarkovChain", "ChainResult"]


@dataclass
class ChainResult:
    """Summary of a chain run."""

    iterations: int
    elapsed_seconds: float
    stats: AcceptanceStats
    posterior_trace: Trace
    count_trace: Trace
    final_circles: List[Circle] = field(default_factory=list)

    @property
    def seconds_per_iteration(self) -> float:
        return self.elapsed_seconds / self.iterations if self.iterations else 0.0


class MarkovChain:
    """Drives Metropolis–Hastings iterations over a posterior state.

    Parameters
    ----------
    post:
        The posterior state to advance (mutated in place).
    gen:
        Move generator (any mode).
    seed:
        RNG seed / stream for proposals and accept decisions.
    record_every:
        Trace sampling stride in iterations (posterior value and model
        count).  Dense tracing of a 500k-iteration run would dominate
        memory; the default records every 100th.
    """

    def __init__(
        self,
        post: PosteriorState,
        gen: MoveGenerator,
        seed: SeedLike = None,
        record_every: int = 100,
    ) -> None:
        if record_every <= 0:
            raise ChainError(f"record_every must be positive, got {record_every}")
        self.post = post
        self.gen = gen
        self.stream: RngStream = coerce_stream(seed)
        self.record_every = record_every
        self.iteration = 0
        # Next iteration at which the traces sample — a single int
        # compare per step instead of a modulo, skipped entirely
        # between recording points.
        self._next_record = record_every
        self.stats = AcceptanceStats()
        self.posterior_trace = Trace()
        self.count_trace = Trace()

    # -- stepping ------------------------------------------------------------
    def step(self) -> StepResult:
        """One MCMC iteration; updates diagnostics."""
        result = metropolis_hastings_step(self.post, self.gen, self.stream)
        self.iteration += 1
        self.stats.record(result.move_type, result.proposed, result.accepted)
        if self.iteration == self._next_record:
            self.posterior_trace.record(self.iteration, self.post.log_posterior)
            self.count_trace.record(self.iteration, float(self.post.config.n))
            self._next_record += self.record_every
        return result

    def run(
        self,
        iterations: int,
        callback: Optional[Callable[[int, StepResult], None]] = None,
    ) -> ChainResult:
        """Run *iterations* steps; returns a summary.

        *callback* (if given) is invoked after every step with
        ``(iteration, StepResult)`` — used by tests and by the periodic
        sampler's phase accounting.
        """
        if iterations < 0:
            raise ChainError(f"iterations must be >= 0, got {iterations}")
        watch = Stopwatch().start()
        if callback is None:
            # Hot loop: no per-step callback check, the StepResult is
            # consumed by step() itself (stats + traces) and dropped.
            step = self.step
            for _ in range(iterations):
                step()
        else:
            for _ in range(iterations):
                result = self.step()
                callback(self.iteration, result)
        elapsed = watch.stop()
        return ChainResult(
            iterations=iterations,
            elapsed_seconds=elapsed,
            stats=self.stats,
            posterior_trace=self.posterior_trace,
            count_trace=self.count_trace,
            final_circles=self.post.snapshot_circles(),
        )

    def with_generator(self, gen: MoveGenerator) -> "MarkovChain":
        """A chain sharing this chain's state/stream/diagnostics but
        proposing from a different generator (phase switching)."""
        out = MarkovChain.__new__(MarkovChain)
        out.post = self.post
        out.gen = gen
        out.stream = self.stream
        out.record_every = self.record_every
        out.iteration = self.iteration
        out._next_record = self._next_record
        out.stats = self.stats
        out.posterior_trace = self.posterior_trace
        out.count_trace = self.count_trace
        return out
