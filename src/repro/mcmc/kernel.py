"""The Metropolis–Hastings transition kernel.

One call to :func:`metropolis_hastings_step` is one MCMC iteration:
generate a proposal, price it, apply it, accept or roll back.  The
log-acceptance is the reversible-jump Metropolis–Hastings ratio
(eq. (1) of the paper, in log form, with the explicit Jacobian for
dimension-changing moves):

    log α = Δ log posterior
          + log q(reverse) − log q(forward)
          + log |J|

Moves that could not be generated or fail validity checks (death on an
empty state, a local move leaving its partition, a radius outside the
prior's truncation) count as rejected iterations without touching the
state — this keeps the move-class proposal probabilities exactly as
configured, which §V relies on when balancing phase lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.mcmc.moves import Move, MoveGenerator, NullMove
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import MoveType
from repro.utils.rng import RngStream

__all__ = ["StepResult", "metropolis_hastings_step", "evaluate_move"]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one MCMC iteration."""

    move_type: MoveType
    proposed: bool  #: False when the proposal could not be generated/validated
    accepted: bool
    log_alpha: float  #: log acceptance ratio (−inf for auto-rejections)
    delta: float  #: applied log-posterior change (0 when rejected)


def metropolis_hastings_step(
    post: PosteriorState, gen: MoveGenerator, stream: RngStream
) -> StepResult:
    """Advance the chain by one iteration; returns what happened."""
    move = gen.generate(post, stream)
    if isinstance(move, NullMove) or not move.is_valid(post):
        return StepResult(move.move_type, proposed=False, accepted=False,
                          log_alpha=-math.inf, delta=0.0)

    log_fwd = move.log_forward_density(post)
    delta = move.apply(post)
    log_rev = move.log_reverse_density(post)
    log_alpha = delta + log_rev - log_fwd + move.log_jacobian()

    if log_alpha >= 0.0 or math.log(stream.random() + 1e-300) < log_alpha:
        return StepResult(move.move_type, proposed=True, accepted=True,
                          log_alpha=log_alpha, delta=delta)
    move.unapply(post)
    return StepResult(move.move_type, proposed=True, accepted=False,
                      log_alpha=log_alpha, delta=0.0)


def evaluate_move(
    post: PosteriorState, move: Move
) -> Optional[float]:
    """Price *move* without leaving it applied: returns log α, or ``None``
    if the move is invalid.  Used by the speculative-moves executor,
    which must evaluate several proposals against the *same* state.

    The state is mutated and rolled back internally; on return *post* is
    unchanged.
    """
    if isinstance(move, NullMove) or not move.is_valid(post):
        return None
    log_fwd = move.log_forward_density(post)
    delta = move.apply(post)
    log_rev = move.log_reverse_density(post)
    log_alpha = delta + log_rev - log_fwd + move.log_jacobian()
    move.unapply(post)
    return log_alpha
