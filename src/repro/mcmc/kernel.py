"""The Metropolis–Hastings transition kernel.

One call to :func:`metropolis_hastings_step` is one MCMC iteration:
generate a proposal, price it, accept (commit) or reject (roll back).
The log-acceptance is the reversible-jump Metropolis–Hastings ratio
(eq. (1) of the paper, in log form, with the explicit Jacobian for
dimension-changing moves):

    log α = Δ log posterior
          + log q(reverse) − log q(forward)
          + log |J|

Moves that could not be generated or fail validity checks (death on an
empty state, a local move leaving its partition, a radius outside the
prior's truncation) count as rejected iterations without touching the
state — this keeps the move-class proposal probabilities exactly as
configured, which §V relies on when balancing phase lengths.

Trial-then-commit
-----------------
The kernel prices proposals through the moves' trial protocol
(:meth:`~repro.mcmc.moves.Move.price` → ``commit``/``rollback``): the
proposal's log-posterior delta is computed *without* mutating coverage
counts or the cached posterior, so a rejection — the common case at
typical 20–40 % acceptance rates — costs one rasterisation per disc
instead of the legacy apply-then-unapply two.  The chain law and every
produced float are bit-identical to the legacy protocol, which remains
available (``legacy_kernel()`` / :func:`set_trial_kernel`) as the
parity-gate reference and benchmark baseline — see
``scripts/bench_core.py``.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ChainError
from repro.mcmc.moves import Move, MoveGenerator, NullMove
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import MoveType
from repro.utils.rng import RngStream

__all__ = [
    "StepResult",
    "MultiproposalRound",
    "metropolis_hastings_step",
    "multiproposal_step",
    "evaluate_move",
    "price_move",
    "trial_kernel_enabled",
    "set_trial_kernel",
    "legacy_kernel",
]

#: The switch is process-local: it honours ``REPRO_LEGACY_KERNEL`` at
#: import time so spawned pool workers (which re-import this module)
#: can be forced onto the legacy kernel via the environment.  Unset,
#: empty, "0", "false" and "no" all mean the default trial kernel.
_TRIAL_KERNEL = (
    os.environ.get("REPRO_LEGACY_KERNEL", "").strip().lower()
    in ("", "0", "false", "no")
)


def trial_kernel_enabled() -> bool:
    """Whether the hot path uses the trial/commit protocol (default) or
    the legacy apply/unapply reference implementation."""
    return _TRIAL_KERNEL


def set_trial_kernel(enabled: bool) -> bool:
    """Switch between the trial and legacy kernels; returns the previous
    setting.  The legacy kernel exists for parity gating and as the
    pre-trial benchmark baseline — both produce bit-identical chains.

    The setting is a process-local global: it is *not* shipped to
    process-pool workers (they re-import with the default), so legacy
    comparisons should run on the serial/thread executors — or export
    ``REPRO_LEGACY_KERNEL=1`` so workers pick the legacy kernel up at
    import.  It is not thread-safe to toggle while chains are running.
    """
    global _TRIAL_KERNEL
    previous = _TRIAL_KERNEL
    _TRIAL_KERNEL = bool(enabled)
    return previous


@contextmanager
def legacy_kernel() -> Iterator[None]:
    """Run the enclosed block on the legacy apply/unapply kernel
    (parity tests, benchmark baselines).  Process-local — see
    :func:`set_trial_kernel` for pool-worker caveats."""
    previous = set_trial_kernel(False)
    try:
        yield
    finally:
        set_trial_kernel(previous)


@dataclass(frozen=True, slots=True)
class StepResult:
    """Outcome of one MCMC iteration."""

    move_type: MoveType
    proposed: bool  #: False when the proposal could not be generated/validated
    accepted: bool
    log_alpha: float  #: log acceptance ratio (−inf for auto-rejections)
    delta: float  #: applied log-posterior change (0 when rejected)


def metropolis_hastings_step(
    post: PosteriorState, gen: MoveGenerator, stream: RngStream
) -> StepResult:
    """Advance the chain by one iteration; returns what happened."""
    move = gen.generate(post, stream)
    if isinstance(move, NullMove) or not move.is_valid(post):
        return StepResult(move.move_type, proposed=False, accepted=False,
                          log_alpha=-math.inf, delta=0.0)

    if _TRIAL_KERNEL:
        log_fwd = move.log_forward_density(post)
        delta = move.price(post)
        log_rev = move.log_reverse_density(post)
        log_alpha = delta + log_rev - log_fwd + move.log_jacobian()

        if log_alpha >= 0.0 or math.log(stream.random() + 1e-300) < log_alpha:
            move.commit(post)
            return StepResult(move.move_type, proposed=True, accepted=True,
                              log_alpha=log_alpha, delta=delta)
        move.rollback(post)
        return StepResult(move.move_type, proposed=True, accepted=False,
                          log_alpha=log_alpha, delta=0.0)

    # Legacy reference protocol: full apply, full unapply on rejection.
    log_fwd = move.log_forward_density(post)
    delta = move.apply(post)
    log_rev = move.log_reverse_density(post)
    log_alpha = delta + log_rev - log_fwd + move.log_jacobian()

    if log_alpha >= 0.0 or math.log(stream.random() + 1e-300) < log_alpha:
        return StepResult(move.move_type, proposed=True, accepted=True,
                          log_alpha=log_alpha, delta=delta)
    move.unapply(post)
    return StepResult(move.move_type, proposed=True, accepted=False,
                      log_alpha=log_alpha, delta=0.0)


@dataclass(frozen=True, slots=True)
class MultiproposalRound:
    """Outcome of one K-way multiproposal round.

    ``results`` holds one :class:`StepResult` per *considered* proposal
    (draw order, up to and including the winner); proposals after an
    acceptance are never evaluated, exactly like K sequential MH steps
    cut short by an early commit.  ``consumed`` — the chain iterations
    this round accounts for — is therefore ``len(results)``.
    """

    consumed: int
    accepted: bool
    winner: int  #: index of the accepted proposal in draw order, or −1
    delta: float  #: applied log-posterior change (0.0 when nothing accepted)
    results: Tuple[StepResult, ...]


def multiproposal_step(
    post: PosteriorState,
    gen: MoveGenerator,
    stream: RngStream,
    width: int,
    temperature: float = 1.0,
    batch: bool = True,
) -> MultiproposalRound:
    """Advance the chain by one K-way multiproposal round.

    Draws *width* proposals from the current state, prices them, and
    selects by the exact-distribution rule: walk the candidates in draw
    order and accept the first whose MH test passes.  Because a
    rejected MH step leaves the state unchanged, this is identical in
    law to ``width`` sequential :func:`metropolis_hastings_step` calls
    truncated at the first acceptance — and for ``width == 1`` it is
    the same computation bit-for-bit (same RNG consumption, same
    floats).

    With ``batch=True`` (and the trial kernel enabled) all candidates
    are priced through the posterior's deferred mode and one stacked
    rasterisation (:meth:`PosteriorState.price_deferred_batch`);
    ``batch=False`` prices each candidate lazily through the ordinary
    sequential protocol with the identical RNG consumption order — the
    bitwise reference the batched path is gated against at every K.

    ``temperature`` divides the posterior delta (MC3 tempered chains);
    1.0 — an exact IEEE no-op division — reproduces the plain kernel.
    """
    if width < 1:
        raise ChainError(f"multiproposal width must be >= 1, got {width}")
    if not temperature > 0.0:
        raise ChainError(f"temperature must be positive, got {temperature}")
    # All candidates are generated from the unchanged pre-round state —
    # the same draws a sequential run would make, since rejected steps
    # leave the state (and therefore later generations) untouched.
    moves = [gen.generate(post, stream) for _ in range(width)]
    if batch and _TRIAL_KERNEL:
        return _batched_round(post, moves, stream, temperature)
    return _sequential_round(post, moves, stream, temperature)


def _sequential_round(
    post: PosteriorState, moves: List[Move], stream: RngStream, temperature: float
) -> MultiproposalRound:
    """Reference selection: price candidates lazily in draw order via
    the ordinary (trial or legacy) protocol, committing the first
    acceptance.  RNG consumption matches the batched path exactly."""
    results: List[StepResult] = []
    for move in moves:
        if isinstance(move, NullMove) or not move.is_valid(post):
            results.append(StepResult(move.move_type, proposed=False, accepted=False,
                                      log_alpha=-math.inf, delta=0.0))
            continue
        log_fwd = move.log_forward_density(post)
        delta = move.price(post) if _TRIAL_KERNEL else move.apply(post)
        log_rev = move.log_reverse_density(post)
        log_alpha = delta / temperature + log_rev - log_fwd + move.log_jacobian()
        if log_alpha >= 0.0 or math.log(stream.random() + 1e-300) < log_alpha:
            if _TRIAL_KERNEL:
                move.commit(post)
            results.append(StepResult(move.move_type, proposed=True, accepted=True,
                                      log_alpha=log_alpha, delta=delta))
            return MultiproposalRound(consumed=len(results), accepted=True,
                                      winner=len(results) - 1, delta=delta,
                                      results=tuple(results))
        if _TRIAL_KERNEL:
            move.rollback(post)
        else:
            move.unapply(post)
        results.append(StepResult(move.move_type, proposed=True, accepted=False,
                                  log_alpha=log_alpha, delta=0.0))
    return MultiproposalRound(consumed=len(results), accepted=False, winner=-1,
                              delta=0.0, results=tuple(results))


def _batched_round(
    post: PosteriorState, moves: List[Move], stream: RngStream, temperature: float
) -> MultiproposalRound:
    """Batched selection: defer every candidate's rasterisations, price
    them all in one stacked pass, then run the accept draws."""
    # Pass 1: per candidate — forward density, deferred price (config
    # mutations + term program, no raster work), reverse density, then
    # rollback so the next candidate prices against the pre-round state.
    infos = []
    programs = []
    for move in moves:
        if isinstance(move, NullMove) or not move.is_valid(post):
            infos.append(None)
            continue
        log_fwd = move.log_forward_density(post)
        post.begin_deferred_move()
        move.price(post)
        log_rev = move.log_reverse_density(post)
        programs.append(post.end_deferred_move())
        move.rollback(post)
        infos.append((log_fwd, log_rev, move.log_jacobian()))
    # Pass 2: one stacked rasterisation prices every candidate.
    priced = post.price_deferred_batch(programs) if programs else []
    # Pass 3: accept draws in draw order; the first acceptance wins —
    # its config ops are replayed and its staged masks committed.
    results: List[StepResult] = []
    accepted = False
    winner = -1
    out_delta = 0.0
    group = 0
    for i, move in enumerate(moves):
        info = infos[i]
        if info is None:
            results.append(StepResult(move.move_type, proposed=False, accepted=False,
                                      log_alpha=-math.inf, delta=0.0))
            continue
        log_fwd, log_rev, jac = info
        prim_deltas, delta = priced[group]
        log_alpha = delta / temperature + log_rev - log_fwd + jac
        if log_alpha >= 0.0 or math.log(stream.random() + 1e-300) < log_alpha:
            move.reapply(post)
            post.commit_deferred(group, prim_deltas)
            results.append(StepResult(move.move_type, proposed=True, accepted=True,
                                      log_alpha=log_alpha, delta=delta))
            accepted = True
            winner = i
            out_delta = delta
            break
        results.append(StepResult(move.move_type, proposed=True, accepted=False,
                                  log_alpha=log_alpha, delta=0.0))
        group += 1
    post.discard_deferred_batch()
    return MultiproposalRound(consumed=len(results), accepted=accepted, winner=winner,
                              delta=out_delta, results=tuple(results))


def price_move(post: PosteriorState, move: Move) -> Optional[float]:
    """Price *move* through the trial protocol: returns log α, or
    ``None`` if the move is invalid (state untouched).

    On a non-``None`` return the move is left *priced* — the caller must
    finish the protocol with exactly one of ``move.commit(post)`` or
    ``move.rollback(post)``.  The speculative executor uses this to
    evaluate a round of proposals and commit only the winner, without
    the evaluate-rollback-reapply round-trip.
    """
    if isinstance(move, NullMove) or not move.is_valid(post):
        return None
    log_fwd = move.log_forward_density(post)
    delta = move.price(post)
    log_rev = move.log_reverse_density(post)
    return delta + log_rev - log_fwd + move.log_jacobian()


def evaluate_move(
    post: PosteriorState, move: Move
) -> Optional[float]:
    """Price *move* without leaving it applied: returns log α, or ``None``
    if the move is invalid.  On return *post* is unchanged — callers
    that need to keep the pricing (speculative rounds) use
    :func:`price_move` instead.
    """
    if _TRIAL_KERNEL:
        log_alpha = price_move(post, move)
        if log_alpha is None:
            return None
        move.rollback(post)
        return log_alpha
    if isinstance(move, NullMove) or not move.is_valid(post):
        return None
    log_fwd = move.log_forward_density(post)
    delta = move.apply(post)
    log_rev = move.log_reverse_density(post)
    log_alpha = delta + log_rev - log_fwd + move.log_jacobian()
    move.unapply(post)
    return log_alpha
