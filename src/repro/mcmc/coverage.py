"""Incremental disc-coverage raster.

The pixel likelihood needs ``M(p)`` — foreground where at least one
circle covers pixel *p*, background elsewhere.  Recomputing that from
scratch per iteration would cost O(image); instead we maintain an
integer *coverage count* per pixel (how many discs cover it) and update
it per move in O(disc area).  The likelihood delta of a move is then a
sum of a precomputed per-pixel weight over exactly the pixels whose
coverage crossed the 0 ↔ >0 boundary.

This locality is the linchpin of the whole paper: because a local move's
delta only reads pixels inside the move's disc, moves in sufficiently
distant partitions are independent and may run concurrently (§V).

A pixel is *covered* by a disc iff its centre ``(col + 0.5, row + 0.5)``
lies within the disc (hard-edge model, matching the renderer up to
anti-aliasing noise absorbed by the likelihood's noise scale).

Two evaluation paths share the raster:

* The *legacy* path (:meth:`add_disc` / :meth:`remove_disc`) mutates
  ``counts`` immediately and returns the weighted delta — the pre-trial
  kernel's protocol, kept verbatim (including its per-call ``np.arange``
  temporaries) so it stays a faithful benchmark baseline and a
  bit-exact reference for the parity suite.
* The *trial* path (:meth:`trial_add_disc` / :meth:`trial_remove_disc`
  + :meth:`commit_pending` / :meth:`discard_pending`) prices the same
  delta without touching ``counts``: the disc mask is computed into
  per-raster scratch buffers (precomputed pixel-centre grids, reused
  mask/square/count windows) so steady-state stepping performs no
  window-sized temporary allocations beyond the single weight gather,
  and a rejected proposal costs one rasterisation instead of two.

The trial delta is bit-identical to the legacy one: the mask arithmetic
is element-for-element the same operations, and the weight sum is taken
over the same boolean-compressed value sequence (numpy's pairwise
summation order depends on the compressed length, so the gather cannot
be fused into a masked reduction without changing last-ulp rounding —
bit-parity wins over the last allocation).

A third path batches the trial protocol across proposals:
:meth:`trial_price_batch` rasterises every disc of K independent
candidate moves in one stacked numpy pass over persistent
``(N, H, W)`` scratch, then prices each candidate against the counts
overlaid with *its own* earlier ops only (candidates are alternative
futures of the same state).  The stacked window mirrors
:meth:`_trial_window` element-for-element — padded rows/columns are
forced to ``+inf`` so they can never pass the ``<= r²`` test — and the
per-op boundary gathers reuse the sequential scratch, so every batched
delta is bit-identical to the corresponding sequential trial call.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.errors import ChainError
from repro.geometry.rect import Rect

__all__ = ["CoverageRaster"]


class _PendingOp:
    """One uncommitted trial rasterisation: a disc mask over a window.

    ``mask`` is a view into one of the raster's pooled mask buffers — it
    stays valid until the op is committed or discarded (the kernel's
    trial protocol resolves every trial before starting the next one).
    """

    __slots__ = ("row0", "row1", "col0", "col1", "mask", "sign")

    def __init__(self, row0, row1, col0, col1, mask, sign) -> None:
        self.row0 = row0
        self.row1 = row1
        self.col0 = col0
        self.col1 = col1
        self.mask = mask
        self.sign = sign


class CoverageRaster:
    """Per-pixel disc-coverage counts over a rectangular pixel window.

    Parameters
    ----------
    height, width:
        Size of the raster in pixels.
    row_offset, col_offset:
        Position of the raster's (0, 0) pixel within the full image —
        partition workers hold a raster over just their patch.
    debug_checks:
        Enable the coverage-underflow guard in :meth:`remove_disc` /
        :meth:`trial_remove_disc` (an extra fancy-index pass per
        removal).  Defaults off in the hot path; tests and
        :meth:`~repro.mcmc.posterior.PosteriorState.verify_consistency`
        turn it on.
    """

    __slots__ = (
        "counts",
        "row_offset",
        "col_offset",
        "debug_checks",
        "_counts_flat",
        "_row_centres",
        "_col_centres",
        "_dx2",
        "_dy2",
        "_sq_flat",
        "_cnt_flat",
        "_newly_flat",
        "_mask_pool",
        "_pending",
        "_batch_groups",
        "_b_cap",
        "_b_r0f",
        "_b_c0f",
        "_b_hlen",
        "_b_wlen",
        "_b_lx",
        "_b_ly",
        "_b_r2",
        "_b_dy2",
        "_b_dx2",
        "_b_padh",
        "_b_padw",
        "_b_sq",
        "_b_mask",
        "_b_arange",
        "_b_arangef",
    )

    def __init__(
        self,
        height: int,
        width: int,
        row_offset: int = 0,
        col_offset: int = 0,
        debug_checks: bool = False,
    ) -> None:
        if height <= 0 or width <= 0:
            raise ChainError(f"raster must be non-empty, got {height}x{width}")
        # The counts backing is flat so reset() can re-shape it for a
        # different window without reallocating (partition workers reuse
        # one raster across cycles).
        self._counts_flat = np.zeros(height * width, dtype=np.int32)
        self.counts = self._counts_flat.reshape(height, width)
        self.row_offset = int(row_offset)
        self.col_offset = int(col_offset)
        self.debug_checks = bool(debug_checks)
        self._init_scratch()

    def _init_scratch(self) -> None:
        height, width = self.counts.shape
        # Pixel-centre coordinate grids, precomputed once: slicing these
        # replaces the two per-call ``np.arange`` allocations of the
        # legacy window (integers + 0.5 are exact, so a slice is
        # bit-identical to ``np.arange(c0, c1) + 0.5``).
        self._row_centres = np.arange(height, dtype=np.float64) + 0.5
        self._col_centres = np.arange(width, dtype=np.float64) + 0.5
        self._dx2 = np.empty(width, dtype=np.float64)
        self._dy2 = np.empty(height, dtype=np.float64)
        # Flat window scratch, grown to the largest window seen so far;
        # contiguous slices + reshape yield zero-copy 2-D views.
        self._sq_flat = np.empty(0, dtype=np.float64)
        self._cnt_flat = np.empty(0, dtype=np.int32)
        self._newly_flat = np.empty(0, dtype=bool)
        self._mask_pool: List[np.ndarray] = []
        self._pending: List[_PendingOp] = []
        # Stacked-batch state: staged candidate groups plus the lazily
        # grown (N, H, W) scratch of trial_price_batch.
        self._batch_groups: List[List[_PendingOp]] = []
        self._b_cap = (0, 0, 0)

    def reset(
        self,
        height: int,
        width: int,
        row_offset: int = 0,
        col_offset: int = 0,
    ) -> None:
        """Reconfigure the raster for a (possibly different) window,
        reusing every backing buffer that is already large enough.

        Partition workers call this once per cycle instead of
        constructing a fresh raster: counts are zeroed, offsets move,
        and the centre grids / window scratch only ever grow.  A longer
        centre grid slices identically to a freshly built one, so a
        reused raster is bit-identical to a new ``CoverageRaster``.
        Pending trial ops and staged batches must be resolved first.
        """
        if height <= 0 or width <= 0:
            raise ChainError(f"raster must be non-empty, got {height}x{width}")
        self._check_no_pending("reset")
        n = height * width
        if self._counts_flat.size < n:
            self._counts_flat = np.zeros(max(n, 2 * self._counts_flat.size), dtype=np.int32)
        self.counts = self._counts_flat[:n].reshape(height, width)
        self.counts[:] = 0
        self.row_offset = int(row_offset)
        self.col_offset = int(col_offset)
        if self._row_centres.size < height:
            self._row_centres = np.arange(height, dtype=np.float64) + 0.5
            self._dy2 = np.empty(height, dtype=np.float64)
        if self._col_centres.size < width:
            self._col_centres = np.arange(width, dtype=np.float64) + 0.5
            self._dx2 = np.empty(width, dtype=np.float64)

    # -- pickling (scratch is derived state; ship only the counts) ----------
    def __getstate__(self):
        return {
            "counts": self.counts,
            "row_offset": self.row_offset,
            "col_offset": self.col_offset,
            "debug_checks": self.debug_checks,
        }

    def __setstate__(self, state) -> None:
        counts = np.ascontiguousarray(state["counts"])
        self._counts_flat = counts.reshape(-1)
        self.counts = counts
        self.row_offset = state["row_offset"]
        self.col_offset = state["col_offset"]
        self.debug_checks = state["debug_checks"]
        self._init_scratch()

    @property
    def shape(self) -> Tuple[int, int]:
        return self.counts.shape  # type: ignore[return-value]

    @property
    def pending_count(self) -> int:
        """Number of uncommitted trial rasterisations."""
        return len(self._pending)

    @property
    def batch_pending_count(self) -> int:
        """Number of staged proposal-batch groups awaiting
        :meth:`commit_batch_group` / :meth:`discard_batch`."""
        return len(self._batch_groups)

    # -- disc rasterisation (legacy / reference path) --------------------------
    def _disc_window(self, x: float, y: float, r: float):
        """(row_slice, col_slice, boolean mask) of pixels covered by the disc.

        Returns ``None`` when the disc misses the raster entirely.
        Coordinates are in full-image space; offsets are applied here.

        This is the pre-trial implementation, kept allocation-heavy on
        purpose: it is the bit-exact reference (and benchmark baseline)
        the trial path is validated against.
        """
        # Pixel (i, j) of the raster has centre (col_offset + j + 0.5,
        # row_offset + i + 0.5) in image coordinates.
        lx = x - self.col_offset
        ly = y - self.row_offset
        h, w = self.counts.shape
        c0 = max(0, int(math.floor(lx - r - 0.5)))
        c1 = min(w, int(math.ceil(lx + r + 0.5)))
        r0 = max(0, int(math.floor(ly - r - 0.5)))
        r1 = min(h, int(math.ceil(ly + r + 0.5)))
        if c1 <= c0 or r1 <= r0:
            return None
        cols = np.arange(c0, c1, dtype=np.float64) + 0.5
        rows = np.arange(r0, r1, dtype=np.float64) + 0.5
        mask = (cols[None, :] - lx) ** 2 + (rows[:, None] - ly) ** 2 <= r * r
        if not mask.any():
            return None
        return slice(r0, r1), slice(c0, c1), mask

    # -- mutation with weighted deltas ----------------------------------------
    def add_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Increment coverage under the disc; return Σ weights over pixels
        that became covered (count 0 → 1).

        *weights* is the full-raster weight map (same shape as counts);
        the caller owns its meaning (the likelihood passes its per-pixel
        turn-on costs).
        """
        self._check_no_pending("add_disc")
        win = self._disc_window(x, y, r)
        if win is None:
            return 0.0
        rows, cols, mask = win
        patch = self.counts[rows, cols]
        newly = mask & (patch == 0)
        patch[mask] += 1
        delta = float(weights[rows, cols][newly].sum()) if newly.any() else 0.0
        return delta

    def remove_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Decrement coverage under the disc; return Σ weights over pixels
        that became uncovered (count 1 → 0).

        With ``debug_checks`` enabled, raises if any touched pixel had
        zero coverage (state corruption).
        """
        self._check_no_pending("remove_disc")
        win = self._disc_window(x, y, r)
        if win is None:
            return 0.0
        rows, cols, mask = win
        patch = self.counts[rows, cols]
        if self.debug_checks and np.any(patch[mask] <= 0):
            raise ChainError(
                f"coverage underflow removing disc ({x:.2f}, {y:.2f}, r={r:.2f})"
            )
        vacated = mask & (patch == 1)
        patch[mask] -= 1
        delta = float(weights[rows, cols][vacated].sum()) if vacated.any() else 0.0
        return delta

    # -- trial path (allocation-free pricing, deferred mutation) ---------------
    def _ensure_scratch(self, n: int, slot: int) -> None:
        """Grow the flat window scratch to hold *n* pixels and make sure
        mask-buffer *slot* exists (steady state: every call is a no-op)."""
        if self._sq_flat.size < n:
            size = max(n, 2 * self._sq_flat.size)
            self._sq_flat = np.empty(size, dtype=np.float64)
            self._cnt_flat = np.empty(size, dtype=np.int32)
            self._newly_flat = np.empty(size, dtype=bool)
            for i, buf in enumerate(self._mask_pool):
                if buf.size < size:
                    self._mask_pool[i] = np.empty(size, dtype=bool)
        while len(self._mask_pool) <= slot:
            self._mask_pool.append(np.empty(self._sq_flat.size or n, dtype=bool))
        if self._mask_pool[slot].size < n:
            self._mask_pool[slot] = np.empty(max(n, self._sq_flat.size), dtype=bool)

    def _trial_window(self, x: float, y: float, r: float, slot: int):
        """Allocation-free counterpart of :meth:`_disc_window`.

        Returns ``(r0, r1, c0, c1, mask)`` with *mask* a 2-D view into
        pooled scratch (valid until slot reuse), or ``None``.  Every
        arithmetic step mirrors the legacy window element-for-element,
        so the mask is bit-identical.
        """
        lx = x - self.col_offset
        ly = y - self.row_offset
        h, w = self.counts.shape
        c0 = max(0, int(math.floor(lx - r - 0.5)))
        c1 = min(w, int(math.ceil(lx + r + 0.5)))
        r0 = max(0, int(math.floor(ly - r - 0.5)))
        r1 = min(h, int(math.ceil(ly + r + 0.5)))
        if c1 <= c0 or r1 <= r0:
            return None
        wlen = c1 - c0
        hlen = r1 - r0
        n = hlen * wlen
        self._ensure_scratch(n, slot)
        dx2 = self._dx2[:wlen]
        np.subtract(self._col_centres[c0:c1], lx, out=dx2)
        np.multiply(dx2, dx2, out=dx2)  # == (cols - lx) ** 2 (numpy squares x**2 as x*x)
        dy2 = self._dy2[:hlen]
        np.subtract(self._row_centres[r0:r1], ly, out=dy2)
        np.multiply(dy2, dy2, out=dy2)
        sq = self._sq_flat[:n].reshape(hlen, wlen)
        # Two-step broadcast (row copy, then in-place column add): the
        # same single addition dx²[j] + dy²[i] bit-for-bit, but numpy's
        # iterator buffers one broadcast operand instead of two.
        np.copyto(sq, dx2[None, :])
        np.add(sq, dy2[:, None], out=sq)
        mask = self._mask_pool[slot][:n].reshape(hlen, wlen)
        np.less_equal(sq, r * r, out=mask)
        # No mask.any() bail-out here: an all-False mask yields an exact
        # 0.0 delta (empty gather) and a no-op commit, so the extra
        # reduction per disc would buy nothing.
        return r0, r1, c0, c1, mask

    def _effective_counts(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """The window's counts as pending trial ops would leave them."""
        return self._overlaid_counts(r0, r1, c0, c1, self._pending)

    def _overlaid_counts(
        self, r0: int, r1: int, c0: int, c1: int, pending: List[_PendingOp]
    ) -> np.ndarray:
        """The window's counts as the given uncommitted ops would leave
        them (the sequential path passes ``self._pending``; the batch
        path passes one candidate group's earlier ops).

        With no ops this is a zero-copy view; otherwise the window is
        copied into scratch and each mask is applied over the
        intersection — exactly the counts the legacy path would have
        produced by mutating in sequence.
        """
        patch = self.counts[r0:r1, c0:c1]
        if not pending:
            return patch
        hlen = r1 - r0
        wlen = c1 - c0
        buf = self._cnt_flat[: hlen * wlen].reshape(hlen, wlen)
        np.copyto(buf, patch)
        for op in pending:
            ir0 = max(r0, op.row0)
            ir1 = min(r1, op.row1)
            ic0 = max(c0, op.col0)
            ic1 = min(c1, op.col1)
            if ir0 >= ir1 or ic0 >= ic1:
                continue
            sub = buf[ir0 - r0 : ir1 - r0, ic0 - c0 : ic1 - c0]
            msk = op.mask[ir0 - op.row0 : ir1 - op.row0, ic0 - op.col0 : ic1 - op.col0]
            if op.sign > 0:
                np.add(sub, msk, out=sub)
            else:
                np.subtract(sub, msk, out=sub)
        return buf

    def trial_add_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Price adding the disc without mutating ``counts``.

        Returns the same Σ weights over newly covered pixels that
        :meth:`add_disc` would, records the rasterised mask as a pending
        op (so later trials in the same move see its effect), and leaves
        state mutation to :meth:`commit_pending`.
        """
        win = self._trial_window(x, y, r, slot=len(self._pending))
        if win is None:
            return 0.0
        r0, r1, c0, c1, mask = win
        patch = self._effective_counts(r0, r1, c0, c1)
        hlen, wlen = mask.shape
        newly = self._newly_flat[: hlen * wlen].reshape(hlen, wlen)
        np.equal(patch, 0, out=newly)
        np.logical_and(mask, newly, out=newly)
        # Same gather + pairwise sum as the legacy path (an empty gather
        # sums to exactly 0.0, so no any() pre-check is needed).
        delta = float(weights[r0:r1, c0:c1][newly].sum())
        self._pending.append(_PendingOp(r0, r1, c0, c1, mask, +1))
        return delta

    def trial_remove_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Price removing the disc without mutating ``counts``; see
        :meth:`trial_add_disc`."""
        win = self._trial_window(x, y, r, slot=len(self._pending))
        if win is None:
            return 0.0
        r0, r1, c0, c1, mask = win
        patch = self._effective_counts(r0, r1, c0, c1)
        if self.debug_checks and np.any(patch[mask] <= 0):
            raise ChainError(
                f"coverage underflow removing disc ({x:.2f}, {y:.2f}, r={r:.2f})"
            )
        hlen, wlen = mask.shape
        vacated = self._newly_flat[: hlen * wlen].reshape(hlen, wlen)
        np.equal(patch, 1, out=vacated)
        np.logical_and(mask, vacated, out=vacated)
        delta = float(weights[r0:r1, c0:c1][vacated].sum())
        self._pending.append(_PendingOp(r0, r1, c0, c1, mask, -1))
        return delta

    def commit_pending(self) -> None:
        """Apply every pending trial mask to ``counts`` (accepted move).

        ``np.add``/``np.subtract`` with an ``out=`` view increment the
        window in place without the legacy path's fancy-index
        temporaries; the resulting counts are identical integers.
        """
        for op in self._pending:
            patch = self.counts[op.row0 : op.row1, op.col0 : op.col1]
            if op.sign > 0:
                np.add(patch, op.mask, out=patch)
            else:
                np.subtract(patch, op.mask, out=patch)
        self._pending.clear()

    def discard_pending(self) -> None:
        """Drop every pending trial mask (rejected move) — counts were
        never touched, so this is O(pending)."""
        self._pending.clear()

    # -- stacked multiproposal pricing ----------------------------------------
    def _ensure_batch_scratch(self, n: int, hmax: int, wmax: int) -> None:
        """Grow the stacked batch scratch to hold *n* windows of up to
        ``hmax × wmax`` pixels; steady state is a no-op (caps only grow,
        doubling along whichever axis overflowed)."""
        cn, ch, cw = self._b_cap
        if n <= cn and hmax <= ch and wmax <= cw:
            return
        cn = cn if n <= cn else max(n, 2 * cn)
        ch = ch if hmax <= ch else max(hmax, 2 * ch)
        cw = cw if wmax <= cw else max(wmax, 2 * cw)
        self._b_cap = (cn, ch, cw)
        self._b_r0f = np.empty(cn, dtype=np.float64)
        self._b_c0f = np.empty(cn, dtype=np.float64)
        self._b_hlen = np.empty(cn, dtype=np.intp)
        self._b_wlen = np.empty(cn, dtype=np.intp)
        self._b_lx = np.empty(cn, dtype=np.float64)
        self._b_ly = np.empty(cn, dtype=np.float64)
        self._b_r2 = np.empty(cn, dtype=np.float64)
        self._b_dy2 = np.empty((cn, ch), dtype=np.float64)
        self._b_dx2 = np.empty((cn, cw), dtype=np.float64)
        self._b_padh = np.empty((cn, ch), dtype=bool)
        self._b_padw = np.empty((cn, cw), dtype=bool)
        self._b_sq = np.empty((cn, ch, cw), dtype=np.float64)
        self._b_mask = np.empty((cn, ch, cw), dtype=bool)
        self._b_arange = np.arange(max(ch, cw), dtype=np.intp)
        self._b_arangef = np.arange(max(ch, cw), dtype=np.float64)

    def trial_price_batch(self, groups, weights: np.ndarray):
        """Price several independent candidate groups of disc ops in one
        stacked rasterisation pass.

        *groups* is a sequence of per-candidate op lists, each op a
        ``(sign, x, y, r)`` tuple (+1 add, −1 remove) in the exact order
        the sequential trial path would issue them.  Returns one list of
        raw weighted sums per group — the same Σ weights over 0 ↔ >0
        boundary pixels the ``trial_*`` methods return, each computed
        against the counts overlaid with the *group's own* earlier ops
        only: groups are alternative futures of the same state, so they
        never see each other.

        The stacked window mirrors :meth:`_trial_window`
        element-for-element, so every delta is bit-identical to the
        corresponding sequential ``trial_add_disc`` /
        ``trial_remove_disc`` call.  Masks stay staged until
        :meth:`commit_batch_group` (apply one winning group) followed by
        :meth:`discard_batch`.
        """
        self._check_no_pending("trial_price_batch")
        h, w = self.counts.shape
        # Pass A: scalar window bounds per op (the same arithmetic as
        # the sequential window).  Degenerate windows price to exactly
        # 0.0 and stage no mask, like the sequential path.
        windows = []  # per-op: (r0, r1, c0, c1, lx, ly, r) or None
        hmax = wmax = 0
        n_live = 0
        for ops in groups:
            for _sign, x, y, r in ops:
                lx = x - self.col_offset
                ly = y - self.row_offset
                c0 = max(0, int(math.floor(lx - r - 0.5)))
                c1 = min(w, int(math.ceil(lx + r + 0.5)))
                r0 = max(0, int(math.floor(ly - r - 0.5)))
                r1 = min(h, int(math.ceil(ly + r + 0.5)))
                if c1 <= c0 or r1 <= r0:
                    windows.append(None)
                    continue
                windows.append((r0, r1, c0, c1, lx, ly, r))
                hmax = max(hmax, r1 - r0)
                wmax = max(wmax, c1 - c0)
                n_live += 1
        if n_live:
            self._rasterise_batch(windows, n_live, hmax, wmax)
            # The boundary/overlay gathers below reuse the sequential
            # window scratch — grow it once for the largest window.
            self._ensure_scratch(hmax * wmax, 0)
        # Pass C: per-candidate pricing against group-local overlays;
        # identical gather + pairwise sum as the sequential trial path.
        results = []
        staged: List[List[_PendingOp]] = []
        li = 0  # cursor over live (rasterised) windows
        wi = 0  # cursor over all windows
        for ops in groups:
            gmasks: List[_PendingOp] = []
            deltas = []
            for sign, x, y, r in ops:
                win = windows[wi]
                wi += 1
                if win is None:
                    deltas.append(0.0)
                    continue
                r0, r1, c0, c1 = win[:4]
                hlen = r1 - r0
                wlen = c1 - c0
                mask = self._b_mask[li, :hlen, :wlen]
                li += 1
                patch = self._overlaid_counts(r0, r1, c0, c1, gmasks)
                if sign < 0 and self.debug_checks and np.any(patch[mask] <= 0):
                    raise ChainError(
                        f"coverage underflow removing disc ({x:.2f}, {y:.2f}, r={r:.2f})"
                    )
                boundary = self._newly_flat[: hlen * wlen].reshape(hlen, wlen)
                np.equal(patch, 0 if sign > 0 else 1, out=boundary)
                np.logical_and(mask, boundary, out=boundary)
                deltas.append(float(weights[r0:r1, c0:c1][boundary].sum()))
                gmasks.append(_PendingOp(r0, r1, c0, c1, mask, 1 if sign > 0 else -1))
            staged.append(gmasks)
            results.append(deltas)
        self._batch_groups = staged
        return results

    def _rasterise_batch(self, windows, n: int, hmax: int, wmax: int) -> None:
        """One stacked :meth:`_trial_window` over the *n* live windows.

        The pixel-centre coordinate ``k + 0.5`` is exact in float64, so
        building it as ``(r0 + j) + 0.5`` is bit-identical to gathering
        from the precomputed centre grid; the subtract / square /
        broadcast-add / compare sequence then mirrors the sequential
        window op-for-op.  Rows and columns beyond a window's true
        extent are forced to ``+inf`` before the squared radii are
        summed, so padding can never satisfy the ``<= r²`` test.
        """
        self._ensure_batch_scratch(n, hmax, wmax)
        i = 0
        for win in windows:
            if win is None:
                continue
            r0, r1, c0, c1, lx, ly, r = win
            self._b_r0f[i] = r0
            self._b_c0f[i] = c0
            self._b_hlen[i] = r1 - r0
            self._b_wlen[i] = c1 - c0
            self._b_lx[i] = lx
            self._b_ly[i] = ly
            self._b_r2[i] = r * r
            i += 1
        ar_h = self._b_arange[:hmax]
        ar_w = self._b_arange[:wmax]
        dy2 = self._b_dy2[:n, :hmax]
        np.add(self._b_r0f[:n, None], self._b_arangef[None, :hmax], out=dy2)
        np.add(dy2, 0.5, out=dy2)  # == row_centres[r0 + j], exactly
        np.subtract(dy2, self._b_ly[:n, None], out=dy2)
        np.multiply(dy2, dy2, out=dy2)
        padh = self._b_padh[:n, :hmax]
        np.greater_equal(ar_h[None, :], self._b_hlen[:n, None], out=padh)
        np.copyto(dy2, np.inf, where=padh)
        dx2 = self._b_dx2[:n, :wmax]
        np.add(self._b_c0f[:n, None], self._b_arangef[None, :wmax], out=dx2)
        np.add(dx2, 0.5, out=dx2)
        np.subtract(dx2, self._b_lx[:n, None], out=dx2)
        np.multiply(dx2, dx2, out=dx2)
        padw = self._b_padw[:n, :wmax]
        np.greater_equal(ar_w[None, :], self._b_wlen[:n, None], out=padw)
        np.copyto(dx2, np.inf, where=padw)
        sq = self._b_sq[:n, :hmax, :wmax]
        np.copyto(sq, dx2[:, None, :])
        np.add(sq, dy2[:, :, None], out=sq)
        mask3 = self._b_mask[:n, :hmax, :wmax]
        np.less_equal(sq, self._b_r2[:n, None, None], out=mask3)

    def commit_batch_group(self, group: int) -> None:
        """Apply one staged group's masks to ``counts`` (the winning
        candidate of a multiproposal round) — the same in-place
        add/subtract sequence as :meth:`commit_pending`.  The batch
        stays staged until :meth:`discard_batch`; committing twice
        without re-pricing corrupts the counts, so the kernel always
        pairs this with an immediate discard."""
        for op in self._batch_groups[group]:
            patch = self.counts[op.row0 : op.row1, op.col0 : op.col1]
            if op.sign > 0:
                np.add(patch, op.mask, out=patch)
            else:
                np.subtract(patch, op.mask, out=patch)

    def discard_batch(self) -> None:
        """Drop every staged batch group (the stacked mask scratch is
        reused by the next batch)."""
        self._batch_groups.clear()

    def _check_no_pending(self, op_name: str) -> None:
        if self._pending:
            raise ChainError(
                f"{op_name} called with {len(self._pending)} uncommitted trial "
                "op(s); commit_pending() or discard_pending() first"
            )
        if self._batch_groups:
            raise ChainError(
                f"{op_name} called with {len(self._batch_groups)} staged proposal-"
                "batch group(s); commit_batch_group() and/or discard_batch() first"
            )

    # -- queries -----------------------------------------------------------------
    def covered_mask(self) -> np.ndarray:
        """Boolean mask of covered pixels (count > 0)."""
        return self.counts > 0

    def covered_weight_sum(self, weights: np.ndarray) -> float:
        """Σ weights over currently covered pixels (full evaluation)."""
        return float(weights[self.counts > 0].sum())

    def add_disc_counts_only(self, x: float, y: float, r: float) -> None:
        """Increment coverage under the disc without computing a delta —
        the bulk-load path (:meth:`rebuild_from`, worker initialisation),
        which previously paid an O(image) dummy-weights allocation per
        rebuild just to discard the weighted sums.

        With ``debug_checks`` enabled the rasterised window is
        cross-validated against the legacy reference
        (:meth:`_disc_window`), so counts-only rebuilds — including the
        one :meth:`~repro.mcmc.posterior.PosteriorState.verify_consistency`
        performs — pass through the same consistency gate as the trial
        path."""
        self._check_no_pending("add_disc_counts_only")
        win = self._trial_window(x, y, r, slot=0)
        if self.debug_checks:
            self._check_counts_only_window(x, y, r, win)
        if win is None:
            return
        r0, r1, c0, c1, mask = win
        patch = self.counts[r0:r1, c0:c1]
        np.add(patch, mask, out=patch)

    def _check_counts_only_window(self, x: float, y: float, r: float, win) -> None:
        """Cross-validate a bulk-load rasterisation against the legacy
        reference window (``debug_checks`` only)."""
        ref = self._disc_window(x, y, r)
        if ref is None:
            # The legacy path also bails on an all-False mask; the trial
            # window stages those as exact no-ops.
            if win is not None and bool(win[4].any()):
                raise ChainError(
                    f"counts-only window for disc ({x:.2f}, {y:.2f}, r={r:.2f}) "
                    "covers pixels where the reference covers none"
                )
            return
        if win is None:
            raise ChainError(
                f"counts-only window for disc ({x:.2f}, {y:.2f}, r={r:.2f}) "
                "is empty where the reference covers pixels"
            )
        rows, cols, mask = ref
        r0, r1, c0, c1, tmask = win
        if (rows.start, rows.stop, cols.start, cols.stop) != (r0, r1, c0, c1) or not np.array_equal(
            tmask, mask
        ):
            raise ChainError(
                f"counts-only rebuild mask for disc ({x:.2f}, {y:.2f}, r={r:.2f}) "
                "deviates from the legacy reference window"
            )

    def rebuild_from(self, xs, ys, rs) -> None:
        """Recompute counts from scratch for the given circles (tests,
        worker initialisation)."""
        self._check_no_pending("rebuild_from")
        self.counts[:] = 0
        for x, y, r in zip(xs, ys, rs):
            self.add_disc_counts_only(float(x), float(y), float(r))

    def equals(self, other: "CoverageRaster") -> bool:
        return (
            self.counts.shape == other.counts.shape
            and self.row_offset == other.row_offset
            and self.col_offset == other.col_offset
            and bool(np.array_equal(self.counts, other.counts))
        )

    def window_rect(self) -> Rect:
        """The raster's extent as an image-space rectangle."""
        h, w = self.counts.shape
        return Rect(
            float(self.col_offset),
            float(self.row_offset),
            float(self.col_offset + w),
            float(self.row_offset + h),
        )
