"""Incremental disc-coverage raster.

The pixel likelihood needs ``M(p)`` — foreground where at least one
circle covers pixel *p*, background elsewhere.  Recomputing that from
scratch per iteration would cost O(image); instead we maintain an
integer *coverage count* per pixel (how many discs cover it) and update
it per move in O(disc area).  The likelihood delta of a move is then a
sum of a precomputed per-pixel weight over exactly the pixels whose
coverage crossed the 0 ↔ >0 boundary.

This locality is the linchpin of the whole paper: because a local move's
delta only reads pixels inside the move's disc, moves in sufficiently
distant partitions are independent and may run concurrently (§V).

A pixel is *covered* by a disc iff its centre ``(col + 0.5, row + 0.5)``
lies within the disc (hard-edge model, matching the renderer up to
anti-aliasing noise absorbed by the likelihood's noise scale).

Two evaluation paths share the raster:

* The *legacy* path (:meth:`add_disc` / :meth:`remove_disc`) mutates
  ``counts`` immediately and returns the weighted delta — the pre-trial
  kernel's protocol, kept verbatim (including its per-call ``np.arange``
  temporaries) so it stays a faithful benchmark baseline and a
  bit-exact reference for the parity suite.
* The *trial* path (:meth:`trial_add_disc` / :meth:`trial_remove_disc`
  + :meth:`commit_pending` / :meth:`discard_pending`) prices the same
  delta without touching ``counts``: the disc mask is computed into
  per-raster scratch buffers (precomputed pixel-centre grids, reused
  mask/square/count windows) so steady-state stepping performs no
  window-sized temporary allocations beyond the single weight gather,
  and a rejected proposal costs one rasterisation instead of two.

The trial delta is bit-identical to the legacy one: the mask arithmetic
is element-for-element the same operations, and the weight sum is taken
over the same boolean-compressed value sequence (numpy's pairwise
summation order depends on the compressed length, so the gather cannot
be fused into a masked reduction without changing last-ulp rounding —
bit-parity wins over the last allocation).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ChainError
from repro.geometry.rect import Rect

__all__ = ["CoverageRaster"]


class _PendingOp:
    """One uncommitted trial rasterisation: a disc mask over a window.

    ``mask`` is a view into one of the raster's pooled mask buffers — it
    stays valid until the op is committed or discarded (the kernel's
    trial protocol resolves every trial before starting the next one).
    """

    __slots__ = ("row0", "row1", "col0", "col1", "mask", "sign")

    def __init__(self, row0, row1, col0, col1, mask, sign) -> None:
        self.row0 = row0
        self.row1 = row1
        self.col0 = col0
        self.col1 = col1
        self.mask = mask
        self.sign = sign


class CoverageRaster:
    """Per-pixel disc-coverage counts over a rectangular pixel window.

    Parameters
    ----------
    height, width:
        Size of the raster in pixels.
    row_offset, col_offset:
        Position of the raster's (0, 0) pixel within the full image —
        partition workers hold a raster over just their patch.
    debug_checks:
        Enable the coverage-underflow guard in :meth:`remove_disc` /
        :meth:`trial_remove_disc` (an extra fancy-index pass per
        removal).  Defaults off in the hot path; tests and
        :meth:`~repro.mcmc.posterior.PosteriorState.verify_consistency`
        turn it on.
    """

    __slots__ = (
        "counts",
        "row_offset",
        "col_offset",
        "debug_checks",
        "_row_centres",
        "_col_centres",
        "_dx2",
        "_dy2",
        "_sq_flat",
        "_cnt_flat",
        "_newly_flat",
        "_mask_pool",
        "_pending",
    )

    def __init__(
        self,
        height: int,
        width: int,
        row_offset: int = 0,
        col_offset: int = 0,
        debug_checks: bool = False,
    ) -> None:
        if height <= 0 or width <= 0:
            raise ChainError(f"raster must be non-empty, got {height}x{width}")
        self.counts = np.zeros((height, width), dtype=np.int32)
        self.row_offset = int(row_offset)
        self.col_offset = int(col_offset)
        self.debug_checks = bool(debug_checks)
        self._init_scratch()

    def _init_scratch(self) -> None:
        height, width = self.counts.shape
        # Pixel-centre coordinate grids, precomputed once: slicing these
        # replaces the two per-call ``np.arange`` allocations of the
        # legacy window (integers + 0.5 are exact, so a slice is
        # bit-identical to ``np.arange(c0, c1) + 0.5``).
        self._row_centres = np.arange(height, dtype=np.float64) + 0.5
        self._col_centres = np.arange(width, dtype=np.float64) + 0.5
        self._dx2 = np.empty(width, dtype=np.float64)
        self._dy2 = np.empty(height, dtype=np.float64)
        # Flat window scratch, grown to the largest window seen so far;
        # contiguous slices + reshape yield zero-copy 2-D views.
        self._sq_flat = np.empty(0, dtype=np.float64)
        self._cnt_flat = np.empty(0, dtype=np.int32)
        self._newly_flat = np.empty(0, dtype=bool)
        self._mask_pool: List[np.ndarray] = []
        self._pending: List[_PendingOp] = []

    # -- pickling (scratch is derived state; ship only the counts) ----------
    def __getstate__(self):
        return {
            "counts": self.counts,
            "row_offset": self.row_offset,
            "col_offset": self.col_offset,
            "debug_checks": self.debug_checks,
        }

    def __setstate__(self, state) -> None:
        self.counts = state["counts"]
        self.row_offset = state["row_offset"]
        self.col_offset = state["col_offset"]
        self.debug_checks = state["debug_checks"]
        self._init_scratch()

    @property
    def shape(self) -> Tuple[int, int]:
        return self.counts.shape  # type: ignore[return-value]

    @property
    def pending_count(self) -> int:
        """Number of uncommitted trial rasterisations."""
        return len(self._pending)

    # -- disc rasterisation (legacy / reference path) --------------------------
    def _disc_window(self, x: float, y: float, r: float):
        """(row_slice, col_slice, boolean mask) of pixels covered by the disc.

        Returns ``None`` when the disc misses the raster entirely.
        Coordinates are in full-image space; offsets are applied here.

        This is the pre-trial implementation, kept allocation-heavy on
        purpose: it is the bit-exact reference (and benchmark baseline)
        the trial path is validated against.
        """
        # Pixel (i, j) of the raster has centre (col_offset + j + 0.5,
        # row_offset + i + 0.5) in image coordinates.
        lx = x - self.col_offset
        ly = y - self.row_offset
        h, w = self.counts.shape
        c0 = max(0, int(math.floor(lx - r - 0.5)))
        c1 = min(w, int(math.ceil(lx + r + 0.5)))
        r0 = max(0, int(math.floor(ly - r - 0.5)))
        r1 = min(h, int(math.ceil(ly + r + 0.5)))
        if c1 <= c0 or r1 <= r0:
            return None
        cols = np.arange(c0, c1, dtype=np.float64) + 0.5
        rows = np.arange(r0, r1, dtype=np.float64) + 0.5
        mask = (cols[None, :] - lx) ** 2 + (rows[:, None] - ly) ** 2 <= r * r
        if not mask.any():
            return None
        return slice(r0, r1), slice(c0, c1), mask

    # -- mutation with weighted deltas ----------------------------------------
    def add_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Increment coverage under the disc; return Σ weights over pixels
        that became covered (count 0 → 1).

        *weights* is the full-raster weight map (same shape as counts);
        the caller owns its meaning (the likelihood passes its per-pixel
        turn-on costs).
        """
        self._check_no_pending("add_disc")
        win = self._disc_window(x, y, r)
        if win is None:
            return 0.0
        rows, cols, mask = win
        patch = self.counts[rows, cols]
        newly = mask & (patch == 0)
        patch[mask] += 1
        delta = float(weights[rows, cols][newly].sum()) if newly.any() else 0.0
        return delta

    def remove_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Decrement coverage under the disc; return Σ weights over pixels
        that became uncovered (count 1 → 0).

        With ``debug_checks`` enabled, raises if any touched pixel had
        zero coverage (state corruption).
        """
        self._check_no_pending("remove_disc")
        win = self._disc_window(x, y, r)
        if win is None:
            return 0.0
        rows, cols, mask = win
        patch = self.counts[rows, cols]
        if self.debug_checks and np.any(patch[mask] <= 0):
            raise ChainError(
                f"coverage underflow removing disc ({x:.2f}, {y:.2f}, r={r:.2f})"
            )
        vacated = mask & (patch == 1)
        patch[mask] -= 1
        delta = float(weights[rows, cols][vacated].sum()) if vacated.any() else 0.0
        return delta

    # -- trial path (allocation-free pricing, deferred mutation) ---------------
    def _ensure_scratch(self, n: int, slot: int) -> None:
        """Grow the flat window scratch to hold *n* pixels and make sure
        mask-buffer *slot* exists (steady state: every call is a no-op)."""
        if self._sq_flat.size < n:
            size = max(n, 2 * self._sq_flat.size)
            self._sq_flat = np.empty(size, dtype=np.float64)
            self._cnt_flat = np.empty(size, dtype=np.int32)
            self._newly_flat = np.empty(size, dtype=bool)
            for i, buf in enumerate(self._mask_pool):
                if buf.size < size:
                    self._mask_pool[i] = np.empty(size, dtype=bool)
        while len(self._mask_pool) <= slot:
            self._mask_pool.append(np.empty(self._sq_flat.size or n, dtype=bool))
        if self._mask_pool[slot].size < n:
            self._mask_pool[slot] = np.empty(max(n, self._sq_flat.size), dtype=bool)

    def _trial_window(self, x: float, y: float, r: float, slot: int):
        """Allocation-free counterpart of :meth:`_disc_window`.

        Returns ``(r0, r1, c0, c1, mask)`` with *mask* a 2-D view into
        pooled scratch (valid until slot reuse), or ``None``.  Every
        arithmetic step mirrors the legacy window element-for-element,
        so the mask is bit-identical.
        """
        lx = x - self.col_offset
        ly = y - self.row_offset
        h, w = self.counts.shape
        c0 = max(0, int(math.floor(lx - r - 0.5)))
        c1 = min(w, int(math.ceil(lx + r + 0.5)))
        r0 = max(0, int(math.floor(ly - r - 0.5)))
        r1 = min(h, int(math.ceil(ly + r + 0.5)))
        if c1 <= c0 or r1 <= r0:
            return None
        wlen = c1 - c0
        hlen = r1 - r0
        n = hlen * wlen
        self._ensure_scratch(n, slot)
        dx2 = self._dx2[:wlen]
        np.subtract(self._col_centres[c0:c1], lx, out=dx2)
        np.multiply(dx2, dx2, out=dx2)  # == (cols - lx) ** 2 (numpy squares x**2 as x*x)
        dy2 = self._dy2[:hlen]
        np.subtract(self._row_centres[r0:r1], ly, out=dy2)
        np.multiply(dy2, dy2, out=dy2)
        sq = self._sq_flat[:n].reshape(hlen, wlen)
        # Two-step broadcast (row copy, then in-place column add): the
        # same single addition dx²[j] + dy²[i] bit-for-bit, but numpy's
        # iterator buffers one broadcast operand instead of two.
        np.copyto(sq, dx2[None, :])
        np.add(sq, dy2[:, None], out=sq)
        mask = self._mask_pool[slot][:n].reshape(hlen, wlen)
        np.less_equal(sq, r * r, out=mask)
        # No mask.any() bail-out here: an all-False mask yields an exact
        # 0.0 delta (empty gather) and a no-op commit, so the extra
        # reduction per disc would buy nothing.
        return r0, r1, c0, c1, mask

    def _effective_counts(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """The window's counts as pending trial ops would leave them.

        With no pending ops this is a zero-copy view; otherwise the
        window is copied into scratch and each pending mask is applied
        over the intersection — exactly the counts the legacy path
        would have produced by mutating in sequence.
        """
        patch = self.counts[r0:r1, c0:c1]
        if not self._pending:
            return patch
        hlen = r1 - r0
        wlen = c1 - c0
        buf = self._cnt_flat[: hlen * wlen].reshape(hlen, wlen)
        np.copyto(buf, patch)
        for op in self._pending:
            ir0 = max(r0, op.row0)
            ir1 = min(r1, op.row1)
            ic0 = max(c0, op.col0)
            ic1 = min(c1, op.col1)
            if ir0 >= ir1 or ic0 >= ic1:
                continue
            sub = buf[ir0 - r0 : ir1 - r0, ic0 - c0 : ic1 - c0]
            msk = op.mask[ir0 - op.row0 : ir1 - op.row0, ic0 - op.col0 : ic1 - op.col0]
            if op.sign > 0:
                np.add(sub, msk, out=sub)
            else:
                np.subtract(sub, msk, out=sub)
        return buf

    def trial_add_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Price adding the disc without mutating ``counts``.

        Returns the same Σ weights over newly covered pixels that
        :meth:`add_disc` would, records the rasterised mask as a pending
        op (so later trials in the same move see its effect), and leaves
        state mutation to :meth:`commit_pending`.
        """
        win = self._trial_window(x, y, r, slot=len(self._pending))
        if win is None:
            return 0.0
        r0, r1, c0, c1, mask = win
        patch = self._effective_counts(r0, r1, c0, c1)
        hlen, wlen = mask.shape
        newly = self._newly_flat[: hlen * wlen].reshape(hlen, wlen)
        np.equal(patch, 0, out=newly)
        np.logical_and(mask, newly, out=newly)
        # Same gather + pairwise sum as the legacy path (an empty gather
        # sums to exactly 0.0, so no any() pre-check is needed).
        delta = float(weights[r0:r1, c0:c1][newly].sum())
        self._pending.append(_PendingOp(r0, r1, c0, c1, mask, +1))
        return delta

    def trial_remove_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Price removing the disc without mutating ``counts``; see
        :meth:`trial_add_disc`."""
        win = self._trial_window(x, y, r, slot=len(self._pending))
        if win is None:
            return 0.0
        r0, r1, c0, c1, mask = win
        patch = self._effective_counts(r0, r1, c0, c1)
        if self.debug_checks and np.any(patch[mask] <= 0):
            raise ChainError(
                f"coverage underflow removing disc ({x:.2f}, {y:.2f}, r={r:.2f})"
            )
        hlen, wlen = mask.shape
        vacated = self._newly_flat[: hlen * wlen].reshape(hlen, wlen)
        np.equal(patch, 1, out=vacated)
        np.logical_and(mask, vacated, out=vacated)
        delta = float(weights[r0:r1, c0:c1][vacated].sum())
        self._pending.append(_PendingOp(r0, r1, c0, c1, mask, -1))
        return delta

    def commit_pending(self) -> None:
        """Apply every pending trial mask to ``counts`` (accepted move).

        ``np.add``/``np.subtract`` with an ``out=`` view increment the
        window in place without the legacy path's fancy-index
        temporaries; the resulting counts are identical integers.
        """
        for op in self._pending:
            patch = self.counts[op.row0 : op.row1, op.col0 : op.col1]
            if op.sign > 0:
                np.add(patch, op.mask, out=patch)
            else:
                np.subtract(patch, op.mask, out=patch)
        self._pending.clear()

    def discard_pending(self) -> None:
        """Drop every pending trial mask (rejected move) — counts were
        never touched, so this is O(pending)."""
        self._pending.clear()

    def _check_no_pending(self, op_name: str) -> None:
        if self._pending:
            raise ChainError(
                f"{op_name} called with {len(self._pending)} uncommitted trial "
                "op(s); commit_pending() or discard_pending() first"
            )

    # -- queries -----------------------------------------------------------------
    def covered_mask(self) -> np.ndarray:
        """Boolean mask of covered pixels (count > 0)."""
        return self.counts > 0

    def covered_weight_sum(self, weights: np.ndarray) -> float:
        """Σ weights over currently covered pixels (full evaluation)."""
        return float(weights[self.counts > 0].sum())

    def add_disc_counts_only(self, x: float, y: float, r: float) -> None:
        """Increment coverage under the disc without computing a delta —
        the bulk-load path (:meth:`rebuild_from`, worker initialisation),
        which previously paid an O(image) dummy-weights allocation per
        rebuild just to discard the weighted sums."""
        self._check_no_pending("add_disc_counts_only")
        win = self._trial_window(x, y, r, slot=0)
        if win is None:
            return
        r0, r1, c0, c1, mask = win
        patch = self.counts[r0:r1, c0:c1]
        np.add(patch, mask, out=patch)

    def rebuild_from(self, xs, ys, rs) -> None:
        """Recompute counts from scratch for the given circles (tests,
        worker initialisation)."""
        self._check_no_pending("rebuild_from")
        self.counts[:] = 0
        for x, y, r in zip(xs, ys, rs):
            self.add_disc_counts_only(float(x), float(y), float(r))

    def equals(self, other: "CoverageRaster") -> bool:
        return (
            self.counts.shape == other.counts.shape
            and self.row_offset == other.row_offset
            and self.col_offset == other.col_offset
            and bool(np.array_equal(self.counts, other.counts))
        )

    def window_rect(self) -> Rect:
        """The raster's extent as an image-space rectangle."""
        h, w = self.counts.shape
        return Rect(
            float(self.col_offset),
            float(self.row_offset),
            float(self.col_offset + w),
            float(self.row_offset + h),
        )
