"""Incremental disc-coverage raster.

The pixel likelihood needs ``M(p)`` — foreground where at least one
circle covers pixel *p*, background elsewhere.  Recomputing that from
scratch per iteration would cost O(image); instead we maintain an
integer *coverage count* per pixel (how many discs cover it) and update
it per move in O(disc area).  The likelihood delta of a move is then a
sum of a precomputed per-pixel weight over exactly the pixels whose
coverage crossed the 0 ↔ >0 boundary.

This locality is the linchpin of the whole paper: because a local move's
delta only reads pixels inside the move's disc, moves in sufficiently
distant partitions are independent and may run concurrently (§V).

A pixel is *covered* by a disc iff its centre ``(col + 0.5, row + 0.5)``
lies within the disc (hard-edge model, matching the renderer up to
anti-aliasing noise absorbed by the likelihood's noise scale).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ChainError
from repro.geometry.rect import Rect

__all__ = ["CoverageRaster"]


class CoverageRaster:
    """Per-pixel disc-coverage counts over a rectangular pixel window.

    Parameters
    ----------
    height, width:
        Size of the raster in pixels.
    row_offset, col_offset:
        Position of the raster's (0, 0) pixel within the full image —
        partition workers hold a raster over just their patch.
    """

    __slots__ = ("counts", "row_offset", "col_offset")

    def __init__(
        self, height: int, width: int, row_offset: int = 0, col_offset: int = 0
    ) -> None:
        if height <= 0 or width <= 0:
            raise ChainError(f"raster must be non-empty, got {height}x{width}")
        self.counts = np.zeros((height, width), dtype=np.int32)
        self.row_offset = int(row_offset)
        self.col_offset = int(col_offset)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.counts.shape  # type: ignore[return-value]

    # -- disc rasterisation ----------------------------------------------------
    def _disc_window(self, x: float, y: float, r: float):
        """(row_slice, col_slice, boolean mask) of pixels covered by the disc.

        Returns ``None`` when the disc misses the raster entirely.
        Coordinates are in full-image space; offsets are applied here.
        """
        # Pixel (i, j) of the raster has centre (col_offset + j + 0.5,
        # row_offset + i + 0.5) in image coordinates.
        lx = x - self.col_offset
        ly = y - self.row_offset
        h, w = self.counts.shape
        c0 = max(0, int(math.floor(lx - r - 0.5)))
        c1 = min(w, int(math.ceil(lx + r + 0.5)))
        r0 = max(0, int(math.floor(ly - r - 0.5)))
        r1 = min(h, int(math.ceil(ly + r + 0.5)))
        if c1 <= c0 or r1 <= r0:
            return None
        cols = np.arange(c0, c1, dtype=np.float64) + 0.5
        rows = np.arange(r0, r1, dtype=np.float64) + 0.5
        mask = (cols[None, :] - lx) ** 2 + (rows[:, None] - ly) ** 2 <= r * r
        if not mask.any():
            return None
        return slice(r0, r1), slice(c0, c1), mask

    # -- mutation with weighted deltas ----------------------------------------
    def add_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Increment coverage under the disc; return Σ weights over pixels
        that became covered (count 0 → 1).

        *weights* is the full-raster weight map (same shape as counts);
        the caller owns its meaning (the likelihood passes its per-pixel
        turn-on costs).
        """
        win = self._disc_window(x, y, r)
        if win is None:
            return 0.0
        rows, cols, mask = win
        patch = self.counts[rows, cols]
        newly = mask & (patch == 0)
        patch[mask] += 1
        delta = float(weights[rows, cols][newly].sum()) if newly.any() else 0.0
        return delta

    def remove_disc(self, x: float, y: float, r: float, weights: np.ndarray) -> float:
        """Decrement coverage under the disc; return Σ weights over pixels
        that became uncovered (count 1 → 0).

        Raises if any touched pixel had zero coverage (state corruption).
        """
        win = self._disc_window(x, y, r)
        if win is None:
            return 0.0
        rows, cols, mask = win
        patch = self.counts[rows, cols]
        if np.any(patch[mask] <= 0):
            raise ChainError(
                f"coverage underflow removing disc ({x:.2f}, {y:.2f}, r={r:.2f})"
            )
        vacated = mask & (patch == 1)
        patch[mask] -= 1
        delta = float(weights[rows, cols][vacated].sum()) if vacated.any() else 0.0
        return delta

    # -- queries -----------------------------------------------------------------
    def covered_mask(self) -> np.ndarray:
        """Boolean mask of covered pixels (count > 0)."""
        return self.counts > 0

    def covered_weight_sum(self, weights: np.ndarray) -> float:
        """Σ weights over currently covered pixels (full evaluation)."""
        return float(weights[self.counts > 0].sum())

    def rebuild_from(self, xs, ys, rs) -> None:
        """Recompute counts from scratch for the given circles (tests,
        worker initialisation)."""
        self.counts[:] = 0
        ones = np.zeros(self.counts.shape)  # dummy weights; deltas unused
        for x, y, r in zip(xs, ys, rs):
            self.add_disc(float(x), float(y), float(r), ones)

    def equals(self, other: "CoverageRaster") -> bool:
        return (
            self.counts.shape == other.counts.shape
            and self.row_offset == other.row_offset
            and self.col_offset == other.col_offset
            and bool(np.array_equal(self.counts, other.counts))
        )

    def window_rect(self) -> Rect:
        """The raster's extent as an image-space rectangle."""
        h, w = self.counts.shape
        return Rect(
            float(self.col_offset),
            float(self.row_offset),
            float(self.col_offset + w),
            float(self.row_offset + h),
        )
