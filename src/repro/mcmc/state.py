"""The circle configuration — the Markov chain's state.

Structure-of-arrays storage (contiguous ``xs``, ``ys``, ``rs`` arrays
plus an active mask) rather than a list of objects: the hot loops of the
likelihood and overlap prior read coordinates by index, and the
partition runners ship state to workers as three arrays (the "fast way"
for array communication per the mpi4py guide).  Slots freed by death
moves are recycled through a free list so indices stay dense-ish and
arrays only grow geometrically.

A :class:`~repro.geometry.spatial_hash.SpatialHash` is maintained
alongside for O(1) neighbour queries (overlap prior, merge partner
selection, partition classification).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChainError
from repro.geometry.circle import Circle
from repro.geometry.spatial_hash import SpatialHash

__all__ = ["CircleConfiguration"]

_INITIAL_CAPACITY = 64


class CircleConfiguration:
    """A dynamic set of circles with spatial indexing.

    Parameters
    ----------
    hash_cell_size:
        Bucket size for the spatial index; choose about twice the
        maximum interaction radius (the move generator and priors query
        neighbourhoods of that scale).
    """

    __slots__ = ("xs", "ys", "rs", "active", "_free", "_n", "_hash", "_active_list")

    def __init__(self, hash_cell_size: float = 32.0) -> None:
        self.xs = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self.ys = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self.rs = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self.active = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self._free: List[int] = list(range(_INITIAL_CAPACITY - 1, -1, -1))
        self._n = 0
        self._hash = SpatialHash(hash_cell_size)
        # Ascending list of active indices, maintained incrementally so
        # the per-step uniform feature draw needs no O(capacity) scan.
        self._active_list: List[int] = []

    # -- size / iteration ---------------------------------------------------
    @property
    def n(self) -> int:
        """Number of active circles."""
        return self._n

    def __len__(self) -> int:
        return self._n

    def active_indices(self) -> np.ndarray:
        """Indices of active circles (ascending order, fresh array)."""
        return np.asarray(self._active_list, dtype=np.intp)

    def active_list(self) -> List[int]:
        """Ascending active indices as the maintained list itself —
        the hot-path view for the move generator's uniform draw.
        Callers must treat it as read-only."""
        return self._active_list

    def __iter__(self) -> Iterator[int]:
        return iter(self.active_indices())

    def circles(self) -> List[Circle]:
        """Snapshot of the configuration as immutable circles."""
        return [
            Circle(float(self.xs[i]), float(self.ys[i]), float(self.rs[i]))
            for i in self.active_indices()
        ]

    # -- element access ------------------------------------------------------
    def circle_at(self, idx: int) -> Circle:
        self._check_active(idx)
        return Circle(float(self.xs[idx]), float(self.ys[idx]), float(self.rs[idx]))

    def position_of(self, idx: int) -> Tuple[float, float]:
        self._check_active(idx)
        return (float(self.xs[idx]), float(self.ys[idx]))

    def radius_of(self, idx: int) -> float:
        self._check_active(idx)
        return float(self.rs[idx])

    def is_active(self, idx: int) -> bool:
        return 0 <= idx < self.active.size and bool(self.active[idx])

    # -- mutation ------------------------------------------------------------
    def add(self, x: float, y: float, r: float) -> int:
        """Insert a circle; returns its index."""
        if r <= 0:
            raise ChainError(f"cannot add circle with radius {r}")
        if not self._free:
            self._grow()
        idx = self._free.pop()
        self.xs[idx] = x
        self.ys[idx] = y
        self.rs[idx] = r
        self.active[idx] = True
        self._n += 1
        bisect.insort(self._active_list, idx)
        self._hash.insert(idx, x, y)
        return idx

    def remove(self, idx: int) -> Circle:
        """Delete circle *idx*; returns the removed geometry (for undo)."""
        self._check_active(idx)
        removed = Circle(float(self.xs[idx]), float(self.ys[idx]), float(self.rs[idx]))
        self.active[idx] = False
        self._free.append(idx)
        self._n -= 1
        del self._active_list[bisect.bisect_left(self._active_list, idx)]
        self._hash.remove(idx)
        return removed

    def move_center(self, idx: int, x: float, y: float) -> Tuple[float, float]:
        """Reposition circle *idx*; returns the previous centre (for undo)."""
        self._check_active(idx)
        old = (float(self.xs[idx]), float(self.ys[idx]))
        self.xs[idx] = x
        self.ys[idx] = y
        self._hash.move(idx, x, y)
        return old

    def set_radius(self, idx: int, r: float) -> float:
        """Change circle *idx*'s radius; returns the previous radius."""
        self._check_active(idx)
        if r <= 0:
            raise ChainError(f"cannot set radius {r} on circle {idx}")
        old = float(self.rs[idx])
        self.rs[idx] = r
        return old

    def clear(self) -> None:
        """Remove all circles."""
        self.active[:] = False
        self._free = list(range(self.active.size - 1, -1, -1))
        self._n = 0
        self._active_list.clear()
        self._hash.clear()

    # -- neighbour queries -----------------------------------------------------
    def neighbours_within(self, x: float, y: float, radius: float, exclude: int = -1) -> List[int]:
        """Active circle indices with centre within *radius* of (x, y)."""
        return [i for i in self._hash.query_disc(x, y, radius) if i != exclude]

    def nearest_within(self, x: float, y: float, radius: float, exclude: int = -1) -> Optional[int]:
        """Closest circle within *radius* of (x, y), or ``None``."""
        return self._hash.nearest_within(x, y, radius, exclude=exclude)

    def indices_in_rect(self, x0: float, y0: float, x1: float, y1: float) -> List[int]:
        """Active circles whose *centre* lies in the half-open rectangle."""
        return self._hash.query_rect(x0, y0, x1, y1)

    # -- bulk transfer ----------------------------------------------------------
    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense (xs, ys, rs) copies of the active circles, ascending index."""
        idx = self.active_indices()
        return self.xs[idx].copy(), self.ys[idx].copy(), self.rs[idx].copy()

    @classmethod
    def from_arrays(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        rs: Sequence[float],
        hash_cell_size: float = 32.0,
    ) -> "CircleConfiguration":
        """Build a configuration from dense coordinate arrays."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        rs = np.asarray(rs, dtype=np.float64)
        if not (xs.shape == ys.shape == rs.shape) or xs.ndim != 1:
            raise ChainError(
                f"coordinate arrays must be equal-length 1-D, got {xs.shape}, {ys.shape}, {rs.shape}"
            )
        cfg = cls(hash_cell_size=hash_cell_size)
        for x, y, r in zip(xs, ys, rs):
            cfg.add(float(x), float(y), float(r))
        return cfg

    @classmethod
    def from_circles(
        cls, circles: Sequence[Circle], hash_cell_size: float = 32.0
    ) -> "CircleConfiguration":
        cfg = cls(hash_cell_size=hash_cell_size)
        for c in circles:
            cfg.add(c.x, c.y, c.r)
        return cfg

    def copy(self) -> "CircleConfiguration":
        """Deep copy (fresh arrays and spatial hash)."""
        out = CircleConfiguration(hash_cell_size=self._hash.cell_size)
        for i in self.active_indices():
            out.add(float(self.xs[i]), float(self.ys[i]), float(self.rs[i]))
        return out

    # -- internals ------------------------------------------------------------
    def _grow(self) -> None:
        old = self.active.size
        new = old * 2
        self.xs = np.resize(self.xs, new)
        self.ys = np.resize(self.ys, new)
        self.rs = np.resize(self.rs, new)
        grown = np.zeros(new, dtype=bool)
        grown[:old] = self.active
        self.active = grown
        self._free.extend(range(new - 1, old - 1, -1))

    def _check_active(self, idx: int) -> None:
        if not (0 <= idx < self.active.size) or not self.active[idx]:
            raise ChainError(f"circle index {idx} is not active")

    def check_invariants(self) -> None:
        """Validate internal consistency (tests / debugging only)."""
        n_active = int(self.active.sum())
        if n_active != self._n:
            raise ChainError(f"active count {n_active} != tracked n {self._n}")
        if len(self._free) + self._n != self.active.size:
            raise ChainError("free list and active set do not partition capacity")
        if sorted(set(self._free)) != sorted(self._free):
            raise ChainError("free list contains duplicates")
        for i in self._free:
            if self.active[i]:
                raise ChainError(f"index {i} is both free and active")
        if len(self._hash) != self._n:
            raise ChainError(f"hash has {len(self._hash)} items, expected {self._n}")
        if self._active_list != [int(i) for i in np.flatnonzero(self.active)]:
            raise ChainError("maintained active list deviates from the active mask")
        for i in self.active_indices():
            hx, hy = self._hash.position_of(int(i))
            if hx != self.xs[i] or hy != self.ys[i]:
                raise ChainError(f"hash position stale for index {i}")
