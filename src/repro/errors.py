"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are still
raised for misuse that static checking would catch).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ImagingError",
    "ChainError",
    "PartitioningError",
    "ExecutorError",
    "CalibrationError",
    "BenchmarkError",
    "EngineError",
    "UnknownStrategyError",
    "ServiceError",
    "ServiceUnavailableError",
    "QueueFullError",
    "QuotaExceededError",
    "JobNotFoundError",
    "DeadlineExceededError",
    "ClusterError",
    "GatewayError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration or parameter combination."""


class GeometryError(ReproError):
    """Invalid geometric construction (degenerate rect, negative radius...)."""


class ImagingError(ReproError):
    """Image container / synthetic scene / filter failures."""


class ChainError(ReproError):
    """Markov chain driver failures (state corruption, bad move, ...)."""


class PartitioningError(ReproError):
    """Partition grid / segmentation / merge failures."""


class ExecutorError(ReproError):
    """Parallel executor failures (worker crash, pool misuse, ...)."""


class CalibrationError(ReproError):
    """Benchmark calibration could not produce usable timings."""


class BenchmarkError(ReproError):
    """A benchmark's built-in correctness gate failed (e.g. the
    BENCH_core parity asserts between the trial and legacy kernels)."""


class EngineError(ReproError):
    """Detection-engine failures (registry misuse, bad request, ...)."""


class UnknownStrategyError(EngineError):
    """A detection request named a strategy that is not registered."""


class ServiceError(ReproError):
    """Detection-service failures (protocol violation, bad job spec, ...)."""


class QueueFullError(ServiceError):
    """The service job queue is at capacity; retry after a delay.

    ``retry_after`` is the server's estimate (seconds) of when capacity
    should free up — the backpressure contract clients are expected to
    honour instead of hammering the queue.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceUnavailableError(ServiceError):
    """The connection to a service was refused, reset, or closed
    mid-request.  The client may transparently reconnect and retry
    (see :class:`repro.service.client.ServiceClient`) — in a cluster,
    this is what a router restart or a dying node looks like from
    outside."""


class QuotaExceededError(QueueFullError):
    """A per-client quota rejected the submission; retry after a delay.

    Subclasses :class:`QueueFullError` deliberately: quota rejections
    reuse the queue's retry-after backpressure shape, so any client loop
    that already honours queue-full rejections honours quotas for free.
    """


class JobNotFoundError(ServiceError):
    """A status/cancel/stream request named an unknown job id."""


class DeadlineExceededError(ServiceError):
    """An operation's overall deadline expired before it could finish.

    Distinct from :class:`QueueFullError` (the server asked for a
    retry) and :class:`ServiceUnavailableError` (the connection died):
    this is the *caller's* time budget running out — raised by
    :class:`repro.service.policy.RetryPolicy` instead of sleeping into
    a wait that cannot succeed, and by servers shedding queued work
    whose propagated wire deadline has already passed.
    """


class ClusterError(ServiceError):
    """Cluster-layer failures (no healthy backends, routing misuse, ...)."""


class GatewayError(ServiceError):
    """HTTP-gateway failures (malformed requests, bad admin ops, ...)."""
