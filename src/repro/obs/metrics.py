"""Metric primitives and the registry that owns them.

Three instrument kinds, all thread-safe and allocation-light enough to
sit on request paths (never inside the MCMC iteration loop):

- :class:`Counter` — monotonically increasing total.
- :class:`Gauge` — a settable level, or a callable sampled at read
  time (queue depths, pool health) so the value is never stale.
- :class:`Histogram` — unbounded ``count``/``total`` plus a bounded
  window of recent samples for percentile snapshots.  The percentile
  math is the service's original ``StageLatencies`` rank formula
  (``sorted_window[min(n - 1, (p * n) // 100)]``) so the migrated
  ``op:stats`` ``stage_latency`` values are bit-identical to what the
  bespoke class produced, with p90/p99 added alongside p50/p95.

A :class:`MetricsRegistry` maps ``(name, labels)`` to a single shared
instrument: ``registry.counter("x_total", node="a")`` is get-or-create,
so instrumentation sites never hold references apart from hot-path
locals.  Families keep creation order for stable exposition.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry"]

#: Percentiles a histogram snapshot reports, in snapshot-key order.
SNAPSHOT_PERCENTILES = (50, 90, 95, 99)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A level that can go up or down — or track a callable.

    With ``fn`` bound, reads sample the callable so the gauge can
    mirror live state (queue depth, healthy-backend count) without a
    writer having to push every change.  Sampling errors read as 0.0
    rather than poisoning an exposition pass.
    """

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            sampled = fn()
        except Exception:
            return 0.0
        return float(sampled) if sampled is not None else 0.0


class Histogram:
    """Unbounded totals plus a windowed percentile view, in seconds.

    ``count``/``total_seconds`` accumulate forever; percentiles and the
    max come from the last *window* samples only, so a long-running
    process reports *recent* latency, not its lifetime blur.  Negative
    samples are dropped (clock skew should not poison a window).
    """

    __slots__ = ("_lock", "_count", "_total", "_window")

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            return
        with self._lock:
            self._count += 1
            self._total += seconds
            self._window.append(seconds)

    def time(self) -> "_HistogramTimer":
        """``with hist.time():`` — observe the block's wall duration."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def snapshot(self) -> Dict[str, float]:
        """Summary doc: totals plus windowed percentiles and max.

        Empty histograms return ``{}`` so exposition (and the legacy
        ``stage_latency`` doc) only lists stages that have samples.
        """
        with self._lock:
            if self._count == 0:
                return {}
            count, total = self._count, self._total
            window = sorted(self._window)
        n = len(window)
        snap: Dict[str, float] = {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count,
        }
        for p in SNAPSHOT_PERCENTILES:
            snap[f"p{p}_seconds"] = window[min(n - 1, (p * n) // 100)]
        snap["max_seconds"] = window[-1]
        return snap


class _HistogramTimer:
    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._start)


class MetricFamily:
    """All label-variants of one named metric (one exposition block)."""

    __slots__ = ("name", "kind", "help", "_series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self._series: Dict[LabelKey, object] = {}

    def series(self) -> List[Tuple[LabelKey, object]]:
        return list(self._series.items())


class MetricsRegistry:
    """Get-or-create home for metric families.

    One registry per long-lived component (plus the process default for
    the engine layer); exposition merges registries, it never requires
    instruments to share one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _series(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Dict[str, object],
        factory: Callable[[], object],
    ):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            if help and not family.help:
                family.help = help
            metric = family._series.get(key)
            if metric is None:
                metric = factory()
                family._series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(name, "counter", help, labels, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        **labels,
    ) -> Gauge:
        gauge = self._series(name, "gauge", help, labels, Gauge)
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self, name: str, help: str = "", window: int = 256, **labels
    ) -> Histogram:
        return self._series(
            name, "histogram", help, labels, lambda: Histogram(window=window)
        )

    def families(self) -> Iterator[MetricFamily]:
        with self._lock:
            return iter(list(self._families.values()))


#: The process-wide default registry — home of the engine layer's
#: metrics (free functions and caches have no component to hang one on).
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY
