"""Unified observability: metrics registry, span tracing, exposition.

One stdlib-only substrate shared by every layer of the stack.  The
engine, service, cluster, and gateway each instrument themselves
against a :class:`MetricsRegistry` — the engine layer (free functions,
``ResultCache``) records into the process-wide default registry from
:func:`get_registry`, while each long-lived component (a
``DetectionService``, ``ShardRouter``, or ``Gateway``) owns a private
registry so co-hosted instances don't blend their numbers.  Exposition
merges any set of registries into compact JSON
(:func:`render_json` — the ``op:metrics`` / ``repro metrics`` surface)
or Prometheus text format (:func:`render_prometheus` — the gateway's
``GET /metrics``).

Tracing is span-shaped but deliberately small: ``with
trace("engine.run_stream"):`` times a block, links it to the enclosing
span via :mod:`contextvars`, appends it to a bounded in-process ring
(:func:`recent_spans`), and folds its duration into a
``trace_span_seconds`` histogram on the target registry.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.expo import (
    PROMETHEUS_CONTENT_TYPE,
    families_to_prometheus,
    merge_families,
    render_json,
    render_prometheus,
)
from repro.obs.trace import (
    Span,
    close_span,
    current_span,
    open_span,
    record_span,
    recent_spans,
    remote_parent,
    span_context,
    trace,
)
from repro.obs.collect import (
    TraceCollector,
    TraceSampler,
    get_collector,
    mark_trace,
    reset_collector,
    set_collector_enabled,
    trace_spans,
)
from repro.obs.critical import (
    build_tree,
    critical_path,
    render_waterfall,
    stage_self_times,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "PROMETHEUS_CONTENT_TYPE",
    "families_to_prometheus",
    "merge_families",
    "render_json",
    "render_prometheus",
    "Span",
    "close_span",
    "current_span",
    "open_span",
    "span_context",
    "record_span",
    "recent_spans",
    "remote_parent",
    "trace",
    "TraceCollector",
    "TraceSampler",
    "get_collector",
    "mark_trace",
    "reset_collector",
    "set_collector_enabled",
    "trace_spans",
    "build_tree",
    "critical_path",
    "render_waterfall",
    "stage_self_times",
]
