"""Span-style tracing: timed blocks with parent links.

``with trace("engine.run_stream"):`` times the block and records a
:class:`Span`.  Nesting is tracked through :mod:`contextvars`, so a
span opened inside another (even across ``await`` points, per-task in
asyncio) carries its parent's id — enough structure to reconstruct a
per-request stage tree from the ring buffer without dragging in a real
tracer.  Finished spans also fold their duration into a
``trace_span_seconds{span=...}`` histogram on the target registry, so
the metrics surface gets per-stage percentiles for free.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["Span", "current_span", "record_span", "recent_spans", "trace"]

#: How many finished spans the in-process ring keeps.
RECENT_SPAN_LIMIT = 512

_ids = itertools.count(1)
_current: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)
_ring_lock = threading.Lock()
_recent: Deque["Span"] = deque(maxlen=RECENT_SPAN_LIMIT)


@dataclass
class Span:
    """One timed block: name, identity, parentage, duration."""

    name: str
    span_id: str
    parent_id: Optional[str] = None
    labels: Dict[str, str] = field(default_factory=dict)
    started: float = 0.0  # time.time() at entry, for ordering/reporting
    duration_seconds: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "labels": dict(self.labels),
            "started": self.started,
            "duration_seconds": self.duration_seconds,
        }


def current_span() -> Optional[Span]:
    """The innermost open span in this context, if any."""
    return _current.get()


def recent_spans(limit: Optional[int] = None) -> List[Dict[str, object]]:
    """The most recent finished spans, oldest first."""
    with _ring_lock:
        spans = list(_recent)
    if limit is not None:
        spans = spans[-limit:]
    return [span.as_dict() for span in spans]


def record_span(
    name: str,
    duration_seconds: float,
    registry: Optional[MetricsRegistry] = None,
    **labels,
) -> Span:
    """Record an already-measured span.

    For code that cannot hold a ``with`` block open across its whole
    duration — generator pipelines like ``engine.run_stream`` measure
    the wall clock themselves and report it here at the terminal, so
    the span never leaks into the consumer's context between yields.
    """
    parent = _current.get()
    span = Span(
        name=name,
        span_id=format(next(_ids), "x"),
        parent_id=parent.span_id if parent is not None else None,
        labels={str(k): str(v) for k, v in labels.items()},
        started=time.time() - max(duration_seconds, 0.0),
        duration_seconds=duration_seconds,
    )
    with _ring_lock:
        _recent.append(span)
    reg = registry if registry is not None else get_registry()
    reg.histogram(
        "trace_span_seconds",
        help="Durations of traced spans, by span name.",
        span=name,
        **labels,
    ).observe(duration_seconds)
    return span


@contextmanager
def trace(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **labels,
) -> Iterator[Span]:
    """Time a block as a span under the current context's parent."""
    parent = _current.get()
    span = Span(
        name=name,
        span_id=format(next(_ids), "x"),
        parent_id=parent.span_id if parent is not None else None,
        labels={str(k): str(v) for k, v in labels.items()},
        started=time.time(),
    )
    token = _current.set(span)
    t0 = time.perf_counter()
    try:
        yield span
    finally:
        span.duration_seconds = time.perf_counter() - t0
        _current.reset(token)
        with _ring_lock:
            _recent.append(span)
        reg = registry if registry is not None else get_registry()
        reg.histogram(
            "trace_span_seconds",
            help="Durations of traced spans, by span name.",
            span=name,
            **labels,
        ).observe(span.duration_seconds)
