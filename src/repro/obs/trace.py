"""Span-style tracing: timed blocks with parent links.

``with trace("engine.run_stream"):`` times the block and records a
:class:`Span`.  Nesting is tracked through :mod:`contextvars`, so a
span opened inside another (even across ``await`` points, per-task in
asyncio) carries its parent's id — enough structure to reconstruct a
per-request stage tree from the ring buffer without dragging in a real
tracer.  Finished spans also fold their duration into a
``trace_span_seconds{span=...}`` histogram on the target registry, so
the metrics surface gets per-stage percentiles for free.

Spans also parent *across processes*: a submitter puts its span id on
the wire (the ``trace`` field of submit messages, the
``X-Repro-Trace`` HTTP header) and the receiving worker wraps the
job's run in :func:`remote_parent`, so a cluster-wide span scrape
shows backend engine spans nested under the router's submit span.
Span ids carry a per-process random prefix precisely so ids minted by
different processes in one cluster never collide in that merged view.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.obs import collect as _collect
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "Span",
    "close_span",
    "current_span",
    "open_span",
    "record_span",
    "recent_spans",
    "remote_parent",
    "span_context",
    "trace",
]

#: How many finished spans the in-process ring keeps.
RECENT_SPAN_LIMIT = 512

_ids = itertools.count(1)
#: Per-process uniquifier: local counters would collide when spans from
#: several cluster processes are merged into one scrape.
_ID_PREFIX = uuid.uuid4().hex[:6]
_current: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)
_ring_lock = threading.Lock()
_recent: Deque["Span"] = deque(maxlen=RECENT_SPAN_LIMIT)


def _next_span_id() -> str:
    return f"{_ID_PREFIX}-{next(_ids):x}"


def _trace_id_for(parent: Optional["Span"], span_id: str) -> str:
    """Inherit the parent's trace id; a parentless span roots its own."""
    if parent is not None:
        return parent.trace_id or parent.span_id
    return span_id


def _finish(span: "Span") -> None:
    """File a finished span into the ring and the per-trace collector."""
    with _ring_lock:
        _recent.append(span)
    if _collect.collector_enabled():
        _collect.get_collector().add(span)


@dataclass
class Span:
    """One timed block: name, identity, parentage, duration."""

    name: str
    span_id: str
    parent_id: Optional[str] = None
    labels: Dict[str, str] = field(default_factory=dict)
    started: float = 0.0  # time.time() at entry, for ordering/reporting
    duration_seconds: Optional[float] = None
    #: The trace this span belongs to: inherited from the parent, or
    #: the span's own id when it is a root.  A remote-parent
    #: placeholder seeds it with the wire id, so every process that
    #: touches one request buffers its spans under the same key.
    trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "labels": dict(self.labels),
            "started": self.started,
            "duration_seconds": self.duration_seconds,
        }


def current_span() -> Optional[Span]:
    """The innermost open span in this context, if any."""
    return _current.get()


def recent_spans(limit: Optional[int] = None) -> List[Dict[str, object]]:
    """The most recent finished spans, oldest first."""
    with _ring_lock:
        spans = list(_recent)
    if limit is not None:
        spans = spans[-limit:]
    return [span.as_dict() for span in spans]


def record_span(
    name: str,
    duration_seconds: float,
    registry: Optional[MetricsRegistry] = None,
    histogram_labels: Optional[Dict[str, object]] = None,
    **labels,
) -> Span:
    """Record an already-measured span.

    For code that cannot hold a ``with`` block open across its whole
    duration — generator pipelines like ``engine.run_stream`` measure
    the wall clock themselves and report it here at the terminal, so
    the span never leaks into the consumer's context between yields.

    By default every label also keys the ``trace_span_seconds``
    histogram; pass *histogram_labels* to decouple them when the span
    carries high-cardinality detail (job ids, tile indices) that must
    not mint a metric series per value.
    """
    parent = _current.get()
    span_id = _next_span_id()
    span = Span(
        name=name,
        span_id=span_id,
        parent_id=parent.span_id if parent is not None else None,
        labels={str(k): str(v) for k, v in labels.items()},
        started=time.time() - max(duration_seconds, 0.0),
        duration_seconds=duration_seconds,
        trace_id=_trace_id_for(parent, span_id),
    )
    _finish(span)
    reg = registry if registry is not None else get_registry()
    metric_labels = histogram_labels if histogram_labels is not None else labels
    reg.histogram(
        "trace_span_seconds",
        help="Durations of traced spans, by span name.",
        span=name,
        **metric_labels,
    ).observe(duration_seconds)
    return span


def open_span(name: str, **labels) -> Span:
    """Mint a span now, to be finished later with :func:`close_span`.

    For generator pipelines whose children must parent under a span
    that cannot hold a ``with`` block open: ``engine.run_stream`` opens
    its span before driving the strategy generator, wraps each
    ``next()`` in :func:`span_context` so the per-partition spans
    recorded mid-stream hang off it, and closes it at the terminal —
    without the span ever leaking into the consumer's context between
    yields.  Parent and trace id are captured from the *current*
    context at open time, exactly as :func:`trace` would.
    """
    parent = _current.get()
    span_id = _next_span_id()
    return Span(
        name=name,
        span_id=span_id,
        parent_id=parent.span_id if parent is not None else None,
        labels={str(k): str(v) for k, v in labels.items()},
        started=time.time(),
        trace_id=_trace_id_for(parent, span_id),
    )


@contextmanager
def span_context(span: Optional[Span]) -> Iterator[Optional[Span]]:
    """Make *span* the current parent for the duration of the block
    (a no-op for ``None``, so call sites need no conditional)."""
    if span is None:
        yield None
        return
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


def close_span(
    span: Span,
    duration_seconds: float,
    registry: Optional[MetricsRegistry] = None,
    histogram_labels: Optional[Dict[str, object]] = None,
) -> Span:
    """Finish a span minted by :func:`open_span`: stamp the duration,
    file it, and feed the ``trace_span_seconds`` histogram (span labels
    by default, *histogram_labels* to decouple — see
    :func:`record_span`)."""
    span.duration_seconds = duration_seconds
    _finish(span)
    reg = registry if registry is not None else get_registry()
    metric_labels = (histogram_labels if histogram_labels is not None
                     else span.labels)
    reg.histogram(
        "trace_span_seconds",
        help="Durations of traced spans, by span name.",
        span=span.name,
        **metric_labels,
    ).observe(duration_seconds)
    return span


@contextmanager
def remote_parent(span_id: Optional[str]) -> Iterator[Optional[Span]]:
    """Parent spans opened inside this block under a *remote* span id.

    The cross-process half of span propagation: a worker that received
    a submitter's span id on the wire wraps the job's execution in
    ``with remote_parent(trace_id):`` and every span recorded inside —
    on this thread/task — links to the submitter's span.  The synthetic
    placeholder span is never recorded itself (it has no duration
    here); a falsy *span_id* makes the block a no-op so call sites
    need no conditional.
    """
    if not span_id:
        yield None
        return
    placeholder = Span(name="remote", span_id=str(span_id),
                       trace_id=str(span_id))
    token = _current.set(placeholder)
    try:
        yield placeholder
    finally:
        _current.reset(token)


@contextmanager
def trace(
    name: str,
    registry: Optional[MetricsRegistry] = None,
    **labels,
) -> Iterator[Span]:
    """Time a block as a span under the current context's parent."""
    parent = _current.get()
    span_id = _next_span_id()
    span = Span(
        name=name,
        span_id=span_id,
        parent_id=parent.span_id if parent is not None else None,
        labels={str(k): str(v) for k, v in labels.items()},
        started=time.time(),
        trace_id=_trace_id_for(parent, span_id),
    )
    token = _current.set(span)
    t0 = time.perf_counter()
    try:
        yield span
    finally:
        span.duration_seconds = time.perf_counter() - t0
        _current.reset(token)
        _finish(span)
        reg = registry if registry is not None else get_registry()
        reg.histogram(
            "trace_span_seconds",
            help="Durations of traced spans, by span name.",
            span=name,
            **labels,
        ).observe(span.duration_seconds)
