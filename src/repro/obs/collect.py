"""Per-trace span collection with tail-based sampling.

The flat recent-span ring (:func:`repro.obs.trace.recent_spans`)
answers "what happened lately"; this module answers "what happened to
*that request*".  Every finished span is bucketed by its ``trace_id``
into a :class:`TraceCollector`, and a :class:`TraceSampler` decides —
at eviction time, when the trace's fate is known — which traces are
worth keeping:

* traces marked **errored** or **deadline-hit** are always retained;
* traces whose top span ran longer than a **moving p95** of recent
  top-span durations are retained (the tail a flat ring loses first);
* a configurable **head-sampled fraction** is retained by a
  deterministic hash of the trace id, so a baseline of ordinary
  traffic survives for comparison;
* everything else is evicted oldest-first once the collector is over
  capacity, and retention is hard-bounded even when every trace is
  protected — a storm of errors cannot grow memory without limit.

The collector is process-global (like the span ring) so spans recorded
anywhere in a process land in one place; ``op:trace`` serves its
buffers to the router, which reassembles the cluster-wide tree.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import Span

__all__ = [
    "TraceCollector",
    "TraceSampler",
    "collector_enabled",
    "get_collector",
    "mark_trace",
    "reset_collector",
    "set_collector_enabled",
    "trace_spans",
]

#: Bounded number of trace buffers a process keeps (protected included).
MAX_TRACES = int(os.environ.get("REPRO_TRACE_MAX_TRACES", "256"))
#: Bounded number of spans a single trace buffer accepts.
MAX_SPANS_PER_TRACE = int(os.environ.get("REPRO_TRACE_MAX_SPANS", "512"))
#: Fraction of ordinary traces retained by head sampling.
HEAD_FRACTION = float(os.environ.get("REPRO_TRACE_HEAD_FRACTION", "0.05"))
#: Sample size for the moving top-span-duration p95.
_P95_WINDOW = 128


class TraceSampler:
    """Tail-based keep/evict policy for finished traces.

    ``keep()`` is consulted only when the collector must shed a trace;
    until then every trace is buffered, which is what makes the
    sampling *tail-based* — the decision happens after the outcome
    (error, deadline, duration) is known, not at the first span.
    """

    def __init__(
        self,
        head_fraction: float = HEAD_FRACTION,
        p95_window: int = _P95_WINDOW,
    ):
        self.head_fraction = max(0.0, min(1.0, head_fraction))
        self._durations: Deque[float] = deque(maxlen=p95_window)
        self._errored: Dict[str, bool] = {}
        self._deadline: Dict[str, bool] = {}
        self._lock = threading.Lock()

    def mark(self, trace_id: Optional[str], *, error: bool = False,
             deadline: bool = False) -> None:
        """Flag a trace as errored and/or deadline-hit (always kept)."""
        if not trace_id:
            return
        with self._lock:
            if error:
                self._errored[str(trace_id)] = True
            if deadline:
                self._deadline[str(trace_id)] = True

    def note_duration(self, seconds: float) -> None:
        """Feed a top-span duration into the moving-p95 estimator."""
        if seconds is None:
            return
        with self._lock:
            self._durations.append(float(seconds))

    def moving_p95(self) -> Optional[float]:
        with self._lock:
            if len(self._durations) < 8:
                return None  # not enough signal to call anything slow
            ordered = sorted(self._durations)
        return ordered[min(len(ordered) - 1, (95 * len(ordered)) // 100)]

    def head_sampled(self, trace_id: str) -> bool:
        """Deterministic per-trace coin flip at ``head_fraction``."""
        if self.head_fraction <= 0.0:
            return False
        bucket = zlib.crc32(trace_id.encode("utf-8", "replace")) % 10_000
        return bucket < self.head_fraction * 10_000

    def keep(self, trace_id: str, top_duration: Optional[float]) -> bool:
        """Should this trace survive eviction pressure?"""
        with self._lock:
            if self._errored.get(trace_id) or self._deadline.get(trace_id):
                return True
        p95 = self.moving_p95()
        # Strictly above: under perfectly uniform traffic every trace
        # *equals* the p95, and >= would protect all of them.
        if p95 is not None and top_duration is not None \
                and top_duration > p95:
            return True
        return self.head_sampled(trace_id)

    def forget(self, trace_id: str) -> None:
        with self._lock:
            self._errored.pop(trace_id, None)
            self._deadline.pop(trace_id, None)


class _TraceBuffer:
    __slots__ = ("spans", "top_duration")

    def __init__(self):
        self.spans: List["Span"] = []
        self.top_duration: Optional[float] = None


class TraceCollector:
    """Bounded per-trace-id span store with sampler-driven eviction.

    Keyed by ``Span.trace_id``; an index from span id to trace id lets
    the router find "the trace containing span X" when all it holds is
    the submit span's id.  Over :attr:`max_traces`, the oldest trace
    the sampler declines to keep is evicted; if *every* buffered trace
    is protected the oldest one goes anyway, so retention stays
    bounded under churn (a flood of errored jobs included).
    """

    def __init__(
        self,
        max_traces: int = MAX_TRACES,
        max_spans_per_trace: int = MAX_SPANS_PER_TRACE,
        sampler: Optional[TraceSampler] = None,
    ):
        self.max_traces = max(1, max_traces)
        self.max_spans_per_trace = max(1, max_spans_per_trace)
        self.sampler = sampler if sampler is not None else TraceSampler()
        self._traces: "OrderedDict[str, _TraceBuffer]" = OrderedDict()
        self._span_index: Dict[str, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def add(self, span: "Span") -> None:
        """File a finished span under its trace id."""
        trace_id = getattr(span, "trace_id", None) or span.span_id
        with self._lock:
            buf = self._traces.get(trace_id)
            if buf is None:
                buf = _TraceBuffer()
                self._traces[trace_id] = buf
            self._traces.move_to_end(trace_id)
            if len(buf.spans) < self.max_spans_per_trace:
                buf.spans.append(span)
                self._span_index[span.span_id] = trace_id
            # The trace's "top" span — the trace root itself, or the
            # first local span hanging off a remote parent — drives
            # the sampler's moving p95.
            top = (span.span_id == trace_id or span.parent_id == trace_id)
            if top and span.duration_seconds is not None:
                if buf.top_duration is None \
                        or span.duration_seconds > buf.top_duration:
                    buf.top_duration = span.duration_seconds
                self.sampler.note_duration(span.duration_seconds)
            evicted = self._evict_locked()
        for tid in evicted:
            self.sampler.forget(tid)

    def _evict_locked(self) -> List[str]:
        evicted: List[str] = []
        while len(self._traces) > self.max_traces:
            victim = None
            for tid, buf in self._traces.items():  # oldest first
                if not self.sampler.keep(tid, buf.top_duration):
                    victim = tid
                    break
            if victim is None:
                # Everything is protected: retention must still be
                # bounded, so the oldest protected trace goes.
                victim = next(iter(self._traces))
            buf = self._traces.pop(victim)
            for span in buf.spans:
                self._span_index.pop(span.span_id, None)
            evicted.append(victim)
        return evicted

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def trace_for_span(self, span_id: Optional[str]) -> Optional[str]:
        """The trace id whose buffer contains *span_id*, if any."""
        if not span_id:
            return None
        with self._lock:
            tid = self._span_index.get(str(span_id))
            if tid is None and str(span_id) in self._traces:
                tid = str(span_id)  # remote root: keyed but never local
            return tid

    def spans(self, trace_id: Optional[str]) -> List[Dict[str, object]]:
        """All buffered spans of a trace, oldest first, as dicts."""
        if not trace_id:
            return []
        with self._lock:
            buf = self._traces.get(str(trace_id))
            spans = list(buf.spans) if buf is not None else []
        return [span.as_dict() for span in spans]

    def spans_for_member(self, span_id: Optional[str]) -> List[Dict[str, object]]:
        """Spans of the trace containing *span_id* (itself a valid key)."""
        return self.spans(self.trace_for_span(span_id))

    def mark(self, trace_id: Optional[str], *, error: bool = False,
             deadline: bool = False) -> None:
        self.sampler.mark(trace_id, error=error, deadline=deadline)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._span_index.clear()


_collector = TraceCollector()
_enabled = True


def get_collector() -> TraceCollector:
    """The process-global trace collector fed by finished spans."""
    return _collector


def collector_enabled() -> bool:
    return _enabled


def set_collector_enabled(flag: bool) -> bool:
    """Toggle span collection (the soak overhead gate's off switch).

    Returns the previous setting.  Disabling stops *collection* only;
    span timing, the recent ring, and the histograms are unaffected.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def reset_collector(max_traces: Optional[int] = None,
                    sampler: Optional[TraceSampler] = None) -> TraceCollector:
    """Swap in a fresh global collector (tests and knob changes)."""
    global _collector
    _collector = TraceCollector(
        max_traces=max_traces if max_traces is not None else MAX_TRACES,
        sampler=sampler,
    )
    return _collector


def mark_trace(trace_id: Optional[str], *, error: bool = False,
               deadline: bool = False) -> None:
    """Flag a trace on the global collector (always retained)."""
    _collector.mark(trace_id, error=error, deadline=deadline)


def trace_spans(trace_id: Optional[str]) -> List[Dict[str, object]]:
    """Spans of a trace on the global collector, as dicts."""
    spans = _collector.spans(trace_id)
    if not spans:
        spans = _collector.spans_for_member(trace_id)
    return spans
