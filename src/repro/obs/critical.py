"""Critical-path analysis over an assembled trace tree.

Input is the flat span-dict list an ``op:trace`` fan-out returns —
possibly gathered from several processes, node-labeled and clock-skew
adjusted by the router.  :func:`build_tree` reconstructs the parent
tree (tolerating missing parents: a span whose parent was evicted or
lives in an unreachable process becomes a root), :func:`critical_path`
walks the longest child chain, :func:`stage_self_times` buckets
*self-time* (a span's duration minus its children's) into the pipeline
stages operators reason about — queue-wait vs dispatch vs kernel vs
merge vs SSE flush — and :func:`render_waterfall` draws the whole
thing as an ASCII timeline for ``repro trace --waterfall``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "STAGE_BY_SPAN",
    "build_tree",
    "critical_path",
    "render_waterfall",
    "stage_self_times",
]

#: Span-name → pipeline-stage mapping for self-time bucketing.  Names
#: not listed fall into the ``other`` bucket; ``engine.run`` /
#: ``engine.run_stream`` self-time is what remains after the partition
#: workers are subtracted — i.e. the merge/coordination cost.
STAGE_BY_SPAN = {
    "gateway.request": "gateway",
    "gateway.sse_stream": "sse_flush",
    "cluster.submit": "dispatch",
    "cluster.stream": "stream",
    "service.queue_wait": "queue_wait",
    "service.run": "service",
    "engine.run": "merge",
    "engine.run_stream": "merge",
    "engine.partition": "kernel",
}


def _as_node(span: Dict[str, object]) -> Dict[str, object]:
    node = dict(span)
    node["children"] = []
    return node


def build_tree(spans: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """Reconstruct the span tree(s) from a flat span-dict list.

    Returns a list of roots (one per connected component), each a span
    dict extended with a ``children`` list sorted by start time.
    Duplicate span ids keep the first occurrence; orphans — spans
    whose parent id is absent from the set — become roots, which is
    what makes partial traces (evicted buffers, dead backends) still
    renderable.
    """
    by_id: Dict[str, Dict[str, object]] = {}
    ordered: List[Dict[str, object]] = []
    for span in spans:
        sid = str(span.get("span_id") or "")
        if not sid or sid in by_id:
            continue
        node = _as_node(span)
        by_id[sid] = node
        ordered.append(node)
    roots: List[Dict[str, object]] = []
    for node in ordered:
        parent_id = node.get("parent_id")
        parent = by_id.get(str(parent_id)) if parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)

    def sort_children(node: Dict[str, object]) -> None:
        node["children"].sort(key=lambda c: (c.get("started") or 0.0))
        for child in node["children"]:
            sort_children(child)

    roots.sort(key=lambda r: (r.get("started") or 0.0))
    for root in roots:
        sort_children(root)
    return roots


def _duration(node: Dict[str, object]) -> float:
    value = node.get("duration_seconds")
    return float(value) if value is not None else 0.0


def stage_self_times(
    roots: List[Dict[str, object]],
    stage_by_span: Optional[Dict[str, str]] = None,
) -> Dict[str, float]:
    """Per-stage self-time across the tree, in seconds.

    Self-time is a span's duration minus the summed durations of its
    direct children (floored at zero: concurrent children — partition
    workers on a pool — can sum past the parent's wall clock).
    """
    stages = stage_by_span if stage_by_span is not None else STAGE_BY_SPAN
    totals: Dict[str, float] = {}

    def walk(node: Dict[str, object]) -> None:
        child_total = sum(_duration(c) for c in node["children"])
        self_time = max(0.0, _duration(node) - child_total)
        stage = stages.get(str(node.get("name")), "other")
        totals[stage] = totals.get(stage, 0.0) + self_time
        for child in node["children"]:
            walk(child)

    for root in roots:
        walk(root)
    return totals


def critical_path(
    roots: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The longest root-to-leaf chain by span duration.

    At each level the child with the largest duration is followed —
    the chain an engineer should look at first when asking where the
    request's wall clock went.
    """
    if not roots:
        return []
    best_root = max(roots, key=_duration)
    path = [best_root]
    node = best_root
    while node["children"]:
        node = max(node["children"], key=_duration)
        path.append(node)
    return path


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1000.0:.1f}ms"


def render_waterfall(
    roots: List[Dict[str, object]],
    width: int = 40,
) -> str:
    """ASCII waterfall: one row per span, bars on a shared timeline."""
    rows: List[Tuple[int, Dict[str, object]]] = []

    def collect(node: Dict[str, object], depth: int) -> None:
        rows.append((depth, node))
        for child in node["children"]:
            collect(child, depth + 1)

    for root in roots:
        collect(root, 0)
    if not rows:
        return "(no spans)"

    starts = [float(n.get("started") or 0.0) for _, n in rows]
    ends = [float(n.get("started") or 0.0) + _duration(n) for _, n in rows]
    t0, t1 = min(starts), max(ends)
    window = max(t1 - t0, 1e-9)

    def bar(node: Dict[str, object]) -> str:
        rel = (float(node.get("started") or 0.0) - t0) / window
        frac = _duration(node) / window
        left = min(width - 1, int(rel * width))
        filled = max(1, int(frac * width))
        filled = min(filled, width - left)
        return "·" * left + "█" * filled + "·" * (width - left - filled)

    label_width = max(
        len("  " * depth + str(node.get("name"))) for depth, node in rows)
    label_width = min(label_width, 48)
    lines = []
    for depth, node in rows:
        labels = node.get("labels") or {}
        nodename = labels.get("node", "")
        tag = f" [{nodename}]" if nodename else ""
        name = ("  " * depth + str(node.get("name")))[:label_width]
        offset = float(node.get("started") or 0.0) - t0
        lines.append(
            f"{name:<{label_width}} |{bar(node)}| "
            f"+{_fmt_seconds(offset)} {_fmt_seconds(_duration(node))}{tag}"
        )
    return "\n".join(lines)
