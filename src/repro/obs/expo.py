"""Exposition: merge registries into JSON or Prometheus text.

Both renderers take any number of registries (``None`` entries and
duplicates are dropped) so a component can expose *its* registry merged
with the process-wide engine registry — the gateway additionally folds
in its target's.  JSON keeps the raw family structure for programmatic
consumers (``op:metrics``, ``repro metrics --json``); the Prometheus
renderer emits text format 0.0.4 with histograms as summaries
(``quantile`` series plus ``_sum``/``_count``, and a non-standard but
legal untyped ``_max`` series for the windowed max).

The JSON family document is also the *wire* shape: a router scrapes its
backends' ``op:metrics`` docs, merges them with
:func:`merge_families` (adding a ``node`` label per backend), and the
gateway renders the merged doc with :func:`families_to_prometheus` —
so one ``GET /metrics`` covers processes the gateway cannot reach by
registry reference.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    SNAPSHOT_PERCENTILES,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "families_to_prometheus",
    "merge_families",
    "render_json",
    "render_prometheus",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _dedupe(registries) -> List[MetricsRegistry]:
    seen, out = set(), []
    for reg in registries:
        if reg is None or id(reg) in seen:
            continue
        seen.add(id(reg))
        out.append(reg)
    return out


def render_json(*registries: Optional[MetricsRegistry]) -> Dict[str, dict]:
    """Merged family docs: ``{name: {type, help, samples: [...]}}``.

    Counter/gauge samples carry ``value``; histogram samples inline the
    snapshot doc (``count``/``total_seconds``/percentiles).  A family
    registered in several registries merges its samples; a same-name
    family of a *different* kind keeps the first kind and appends its
    samples anyway rather than erroring an exposition pass.
    """
    merged: Dict[str, dict] = {}
    for reg in _dedupe(registries):
        for family in reg.families():
            doc = merged.setdefault(
                family.name,
                {"type": family.kind, "help": family.help, "samples": []},
            )
            if family.help and not doc["help"]:
                doc["help"] = family.help
            for key, metric in family.series():
                sample: Dict[str, object] = {"labels": dict(key)}
                if isinstance(metric, Histogram):
                    sample.update(metric.snapshot())
                else:
                    sample["value"] = metric.value
                doc["samples"].append(sample)
    return merged


def merge_families(
    target: Dict[str, dict],
    source: Dict[str, dict],
    extra_labels: Optional[Dict[str, str]] = None,
) -> Dict[str, dict]:
    """Fold *source* family docs into *target* in place.

    *extra_labels* are prepended to every merged sample's labels —
    the hook a scraping router uses to tag each backend's families with
    ``node=...`` so same-named series from N backends stay distinct.
    """
    if not isinstance(source, dict):
        return target
    for name, doc in source.items():
        if not isinstance(doc, dict):
            continue
        dst = target.setdefault(
            name,
            {"type": doc.get("type", "untyped"),
             "help": doc.get("help", ""), "samples": []},
        )
        if doc.get("help") and not dst["help"]:
            dst["help"] = doc["help"]
        for sample in doc.get("samples", ()):
            if not isinstance(sample, dict):
                continue
            merged_sample = dict(sample)
            if extra_labels:
                merged_sample["labels"] = {
                    **extra_labels, **(sample.get("labels") or {})
                }
            dst["samples"].append(merged_sample)
    return target


def _prom_name(name: str, namespace: str) -> str:
    full = f"{namespace}_{name}" if namespace else name
    full = _NAME_OK.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _prom_labels(pairs: Tuple[Tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    parts = []
    for k, v in pairs:
        k = _NAME_OK.sub("_", str(k))
        v = str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{k}="{v}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), ".10g")


def families_to_prometheus(
    families: Dict[str, dict], namespace: str = "repro"
) -> str:
    """A JSON family document (:func:`render_json` /
    :func:`merge_families` output) as Prometheus text format 0.0.4."""
    lines: List[str] = []
    for fam_name, doc in families.items():
        samples = [s for s in doc.get("samples", ()) if isinstance(s, dict)]
        name = _prom_name(fam_name, namespace)
        fam_kind = doc.get("type", "untyped")
        kind = "summary" if fam_kind == "histogram" else fam_kind
        emitted_any = False
        for sample in samples:
            key = tuple(sorted((sample.get("labels") or {}).items()))
            if "value" in sample:
                if not emitted_any:
                    emitted_any = True
                    _emit_header(lines, name, kind, doc.get("help", ""))
                lines.append(
                    f"{name}{_prom_labels(key)} {_prom_value(sample['value'])}"
                )
            elif "count" in sample:  # histogram snapshot, non-empty
                if not emitted_any:
                    emitted_any = True
                    _emit_header(lines, name, kind, doc.get("help", ""))
                for p in SNAPSHOT_PERCENTILES:
                    q = key + (("quantile", format(p / 100.0, "g")),)
                    lines.append(
                        f"{name}{_prom_labels(q)} "
                        f"{_prom_value(sample[f'p{p}_seconds'])}"
                    )
                lines.append(
                    f"{name}_sum{_prom_labels(key)} "
                    f"{_prom_value(sample['total_seconds'])}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(key)} {sample['count']}"
                )
                lines.append(
                    f"{name}_max{_prom_labels(key)} "
                    f"{_prom_value(sample['max_seconds'])}"
                )
            # A labels-only sample is an empty histogram window: no lines.
    return "\n".join(lines) + "\n" if lines else ""


def _emit_header(lines: List[str], name: str, kind: str, help_text: str) -> None:
    if help_text:
        escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {name} {escaped}")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(
    *registries: Optional[MetricsRegistry], namespace: str = "repro"
) -> str:
    """Prometheus text exposition (format 0.0.4) of merged registries."""
    return families_to_prometheus(render_json(*registries), namespace=namespace)
