"""Argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` with uniform,
actionable messages.  Used at public API boundaries only — hot inner
loops rely on construction-time validation instead.
"""

from __future__ import annotations

import math
from typing import Any, Tuple, Type, Union

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_type",
]


def _fail(name: str, value: Any, requirement: str) -> None:
    raise ConfigurationError(f"{name} must be {requirement}, got {value!r}")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and finite."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "a positive number")
    if not math.isfinite(value) or value <= 0:
        _fail(name, value, "a positive finite number")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and finite."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "a non-negative number")
    if not math.isfinite(value) or value < 0:
        _fail(name, value, "a non-negative finite number")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "a probability in [0, 1]")
    if not (0.0 <= value <= 1.0):
        _fail(name, value, "a probability in [0, 1]")
    return float(value)


def check_in_range(
    name: str, value: float, low: float, high: float, inclusive: bool = True
) -> float:
    """Require *value* in ``[low, high]`` (or open interval)."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        _fail(name, value, f"in {bracket[0]}{low}, {high}{bracket[1]}")
    return value


def check_type(
    name: str, value: Any, types: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Require ``isinstance(value, types)``."""
    if not isinstance(value, types):
        tn = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        _fail(name, value, f"of type {tn}")
    return value
