"""Plain-text table / series rendering for the benchmark harness.

The paper's evaluation is a handful of tables (Table I) and line plots
(Figs. 1 and 2).  Rather than depending on a plotting stack, the bench
harness prints the same rows/series as aligned ASCII so results can be
compared against the paper directly from the terminal and archived in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["Table", "format_series"]

Cell = Union[str, int, float, None]


def _fmt(value: Cell, precision: int) -> str:
    if value is None:
        return "–"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10 ** (precision + 2) or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """An aligned ASCII table with a title, header row and data rows.

    >>> t = Table("Results", ["name", "runtime"])
    >>> t.add_row(["full", 1.08])
    >>> print(t.render())          # doctest: +SKIP
    """

    title: str
    headers: Sequence[str]
    precision: int = 4
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, row: Sequence[Cell]) -> None:
        """Append a data row; must match the header width."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def add_rows(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(row)

    def render(self) -> str:
        """Render the table as an aligned multi-line string."""
        str_rows = [[_fmt(c, self.precision) for c in row] for row in self.rows]
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append(sep)
        for row in str_rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[float],
    series: Sequence[tuple],
    precision: int = 4,
    y_label: Optional[str] = None,
) -> str:
    """Render one or more (label, ys) series against shared x values.

    This is the textual analogue of the paper's line figures: one row per
    x value, one column per series.

    Parameters
    ----------
    series:
        Sequence of ``(label, ys)`` pairs where each ``ys`` has the same
        length as ``xs``.
    """
    headers = [x_label] + [label for label, _ in series]
    for label, ys in series:
        if len(ys) != len(xs):
            raise ValueError(
                f"series {label!r} has {len(ys)} points, expected {len(xs)}"
            )
    t = Table(title if y_label is None else f"{title} (y = {y_label})",
              headers, precision=precision)
    for i, x in enumerate(xs):
        t.add_row([x] + [ys[i] for _, ys in series])
    return t.render()
