"""Deterministic random-number stream management.

MCMC experiments must be reproducible run-to-run and — crucially for the
parallel samplers in :mod:`repro.core` — each partition worker needs its
own statistically independent stream that does not depend on scheduling
order.  We build on numpy's ``SeedSequence`` spawning, which provides
exactly this guarantee.

Example
-------
>>> root = RngStream(seed=42)
>>> children = root.spawn(4)          # independent streams per partition
>>> x = children[0].rng.random()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["RngStream", "spawn_streams", "as_generator", "coerce_stream"]

SeedLike = Union[int, np.random.SeedSequence, "RngStream", np.random.Generator, None]


@dataclass
class RngStream:
    """A seedable, spawnable random stream.

    Wraps a ``numpy.random.Generator`` together with the ``SeedSequence``
    that produced it, so that child streams can be spawned deterministically.

    Parameters
    ----------
    seed:
        Integer seed, an existing ``SeedSequence``, or ``None`` for
        OS-entropy seeding (non-reproducible; only for interactive use).
    """

    seed: Optional[Union[int, np.random.SeedSequence]] = None
    _seq: np.random.SeedSequence = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.seed, np.random.SeedSequence):
            self._seq = self.seed
        else:
            self._seq = np.random.SeedSequence(self.seed)
        self._rng = np.random.Generator(np.random.PCG64(self._seq))

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._rng

    def spawn(self, n: int) -> List["RngStream"]:
        """Create *n* independent child streams.

        Spawning is deterministic given the parent's seed and the order of
        spawn calls, and children are independent of each other and of the
        parent's future output.
        """
        if n < 0:
            raise ValueError(f"cannot spawn {n} streams")
        return [RngStream(seed=s) for s in self._seq.spawn(n)]

    def spawn_one(self) -> "RngStream":
        """Convenience: spawn a single child stream."""
        return self.spawn(1)[0]

    @property
    def entropy(self) -> object:
        """The entropy of the underlying seed sequence (for logging)."""
        return self._seq.entropy

    # -- convenience proxies used pervasively in the samplers ------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self._rng.random())

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return float(self._rng.uniform(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Gaussian sample."""
        return float(self._rng.normal(loc, scale))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in [low, high)."""
        return int(self._rng.integers(low, high))

    def choice_index(self, weights: Sequence[float]) -> int:
        """Sample an index proportionally to non-negative *weights*."""
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        total = w.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError("weights must sum to a positive finite value")
        return int(self._rng.choice(w.size, p=w / total))


def spawn_streams(seed: SeedLike, n: int) -> List[RngStream]:
    """Spawn *n* independent :class:`RngStream` objects from *seed*."""
    return _coerce(seed).spawn(n)


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce *seed* to a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return _coerce(seed).rng


def coerce_stream(seed: SeedLike) -> RngStream:
    """Coerce *seed* (int / SeedSequence / RngStream / Generator / None)
    to an :class:`RngStream`."""
    return _coerce(seed)


def _coerce(seed: SeedLike) -> RngStream:
    if isinstance(seed, RngStream):
        return seed
    if isinstance(seed, np.random.Generator):
        # Derive a child seed from the generator itself; reproducible only
        # relative to the generator's current state.
        return RngStream(seed=int(seed.integers(0, 2**63 - 1)))
    return RngStream(seed=seed)
