"""Wall-clock measurement helpers used by the benchmark harness.

The paper reports mean time-per-iteration and total runtimes; these small
classes standardise how we collect them (monotonic clock, explicit
start/stop, accumulation across phases).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Stopwatch", "TimingAccumulator"]


class Stopwatch:
    """A start/stop wall-clock timer based on ``time.perf_counter``.

    >>> sw = Stopwatch().start()
    >>> elapsed = sw.stop()
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing; returns self for chaining."""
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total accumulated seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time; stops the watch if running."""
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds (including the live segment if running)."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self.running:
            self.stop()


@dataclass
class TimingAccumulator:
    """Accumulates named timing buckets (e.g. 'global_phase', 'local_phase').

    Used by the periodic sampler to attribute wall-clock time to the
    sequential and parallel parts of the algorithm, mirroring the
    decomposition in eq. (2) of the paper.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, bucket: str, seconds: float) -> None:
        """Add *seconds* to *bucket*."""
        if seconds < 0:
            raise ValueError(f"negative duration for bucket {bucket!r}")
        self.totals[bucket] = self.totals.get(bucket, 0.0) + seconds
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    def total(self, bucket: str) -> float:
        """Total seconds recorded against *bucket* (0.0 if unseen)."""
        return self.totals.get(bucket, 0.0)

    def count(self, bucket: str) -> int:
        """Number of samples recorded against *bucket*."""
        return self.counts.get(bucket, 0)

    def mean(self, bucket: str) -> float:
        """Mean seconds per sample for *bucket* (0.0 if unseen)."""
        n = self.counts.get(bucket, 0)
        return self.totals.get(bucket, 0.0) / n if n else 0.0

    def grand_total(self) -> float:
        """Sum of all buckets."""
        return sum(self.totals.values())

    def merge(self, other: "TimingAccumulator") -> None:
        """Fold another accumulator's buckets into this one."""
        for k, v in other.totals.items():
            self.totals[k] = self.totals.get(k, 0.0) + v
        for k, c in other.counts.items():
            self.counts[k] = self.counts.get(k, 0) + c

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of bucket totals."""
        return dict(self.totals)

    def buckets(self) -> List[str]:
        return sorted(self.totals)
