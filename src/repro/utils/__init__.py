"""Small shared utilities: RNG stream management, timers, validation, tables."""

from repro.utils.rng import RngStream, spawn_streams, as_generator
from repro.utils.timing import Stopwatch, TimingAccumulator
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_type,
)
from repro.utils.tables import Table, format_series

__all__ = [
    "RngStream",
    "spawn_streams",
    "as_generator",
    "Stopwatch",
    "TimingAccumulator",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_type",
    "Table",
    "format_series",
]
