"""Model recombination after partitioned MCMC runs (§VIII–IX).

Two regimes:

* Intelligent partitioning — partitions are disjoint by construction,
  so recombination is plain concatenation (:func:`concat_models`);
  "combining the results for the three separate partitions is trivial".
* Blind partitioning — partitions overlap, so boundary artifacts can be
  found twice.  :func:`merge_blind_models` implements the paper's
  heuristic pipeline:

  1. delete from each partition's model the artifacts whose centre is
     not inside that partition's *core* ("beads whose centre is not
     inside the dotted line ... are deleted");
  2. take the union;
  3. artifacts centred in an overlap band with a counterpart within
     *merge_distance* (the paper: "centerpoints within say 5 pixels")
     are merged into their average;
  4. artifacts in an overlap band with **no** counterpart in the
     neighbouring partition's raw model are *disputed* — kept or
     dropped per ``dispute_policy`` ("you may wish to accept or discard
     them depending on whether it is more important to avoid
     false-positives or not missing potential artifacts");
  5. **orphan rescue** (a hardening beyond the paper's text): an
     artifact centred *exactly on a core line* can be estimated on
     opposite sides of the line by the two partitions, so the core
     filter deletes both copies and the artifact vanishes.  Orphans —
     core-filtered circles never consumed by a merge — are rescued when
     the partition that owns their centre also core-filtered a matching
     estimate: the two mutually-corroborating orphans merge into one
     accepted artifact.  (The paper's bead images never place an
     artifact exactly on a cut, so its procedure never hits this case;
     without the rescue, step 1 silently loses such artifacts.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


from repro.errors import PartitioningError
from repro.geometry.circle import Circle
from repro.partitioning.blind import BlindPartition

__all__ = ["MergeReport", "merge_blind_models", "concat_models", "match_circles"]


def concat_models(models: Sequence[Sequence[Circle]]) -> List[Circle]:
    """Union of disjoint partition models (intelligent partitioning)."""
    out: List[Circle] = []
    for m in models:
        out.extend(m)
    return out


def match_circles(
    a: Sequence[Circle], b: Sequence[Circle], max_distance: float
) -> List[Tuple[int, int]]:
    """Greedy nearest-centre matching between two circle lists.

    Pairs are matched closest-first; each circle matches at most once;
    pairs farther apart than *max_distance* are not matched.  Returns
    (index_in_a, index_in_b) pairs.  Used both by the blind-partition
    merge and by the result-quality metrics in
    :mod:`repro.core.evaluation`.
    """
    if max_distance < 0:
        raise PartitioningError(f"max_distance must be >= 0, got {max_distance}")
    if not a or not b:
        return []
    candidates: List[Tuple[float, int, int]] = []
    for i, ca in enumerate(a):
        for j, cb in enumerate(b):
            d = ca.distance_to(cb)
            if d <= max_distance:
                candidates.append((d, i, j))
    candidates.sort()
    used_a: set = set()
    used_b: set = set()
    pairs: List[Tuple[int, int]] = []
    for _, i, j in candidates:
        if i in used_a or j in used_b:
            continue
        pairs.append((i, j))
        used_a.add(i)
        used_b.add(j)
    return pairs


@dataclass
class MergeReport:
    """Outcome of a blind-partition merge."""

    circles: List[Circle] = field(default_factory=list)
    n_auto_accepted: int = 0  #: centres in a core, outside all overlap bands
    n_merged: int = 0  #: duplicate pairs collapsed into averages
    n_corroborated: int = 0  #: overlap-band artifacts confirmed by a neighbour
    n_disputed_kept: int = 0
    n_disputed_dropped: int = 0
    n_rescued: int = 0  #: straddling artifacts recovered from double deletion

    @property
    def n_total(self) -> int:
        return len(self.circles)


def merge_blind_models(
    partitions: Sequence[BlindPartition],
    models: Sequence[Sequence[Circle]],
    merge_distance: float = 5.0,
    dispute_policy: str = "accept",
) -> MergeReport:
    """Reconcile per-partition models into one image-wide model.

    Parameters
    ----------
    partitions, models:
        Parallel sequences: the geometry each model was fitted over and
        the fitted circles (centres within the *expanded* rectangle).
    merge_distance:
        Max centre distance for two overlap-band artifacts to be deemed
        the same artifact.
    dispute_policy:
        ``"accept"`` keeps unconfirmed overlap-band artifacts,
        ``"discard"`` drops them.
    """
    if len(partitions) != len(models):
        raise PartitioningError(
            f"{len(partitions)} partitions but {len(models)} models"
        )
    if dispute_policy not in ("accept", "discard"):
        raise PartitioningError(f"unknown dispute_policy {dispute_policy!r}")

    report = MergeReport()

    # Step 1: core filter — each partition keeps only circles centred in
    # its core.  Cores tile the image, so every artifact now has exactly
    # one owning partition (up to estimation jitter across a core line).
    # Entries carry their raw-model index so a kept circle can be marked
    # consumed in its own raw model once processed.
    kept: List[List[Tuple[int, Circle]]] = []
    for part, model in zip(partitions, models):
        kept.append([(j, c) for j, c in enumerate(model) if part.in_core(c.x, c.y)])

    # Step 2+3: examine each kept circle.  Circles outside every overlap
    # band are auto-accepted.  Circles in an overlap band are compared
    # against each overlapping neighbour's *raw* model: a counterpart
    # within merge_distance corroborates (and is averaged in); absence
    # in every overlapping neighbour makes the circle disputed.
    consumed: Dict[int, set] = {k: set() for k in range(len(partitions))}
    # Kept circles collapsed into a merge produced by an earlier partition
    # (identity-based: every model circle is a distinct object).
    absorbed: set = set()

    for k, (part, circles) in enumerate(zip(partitions, kept)):
        for raw_idx, c in circles:
            if id(c) in absorbed:
                continue
            consumed[k].add(raw_idx)  # c may no longer confirm anyone else
            overlapping = [
                m
                for m, other in enumerate(partitions)
                if m != k and other.expanded.contains_point(c.x, c.y)
            ]
            if not overlapping:
                report.circles.append(c)
                report.n_auto_accepted += 1
                continue

            merged = c
            confirmations = 0
            for m in overlapping:
                best_j = None
                best_d = merge_distance
                for j, other_c in enumerate(models[m]):
                    if j in consumed[m]:
                        continue
                    d = merged.distance_to(other_c)
                    if d <= best_d:
                        best_d = d
                        best_j = j
                if best_j is not None:
                    other_c = models[m][best_j]
                    consumed[m].add(best_j)
                    # If the counterpart was *kept* by its own partition
                    # (centre straddled the core line), collapsing here
                    # removes the duplicate from the union.
                    if partitions[m].in_core(other_c.x, other_c.y):
                        absorbed.add(id(other_c))
                        report.n_merged += 1
                    merged = merged.merged_with(other_c)
                    confirmations += 1

            if confirmations > 0:
                report.circles.append(merged)
                report.n_corroborated += 1
            elif dispute_policy == "accept":
                report.circles.append(merged)
                report.n_disputed_kept += 1
            else:
                report.n_disputed_dropped += 1

    # Step 5: orphan rescue.  An artifact straddling a core line can be
    # estimated on opposite sides by the two partitions, so step 1
    # deleted both copies.  Find unconsumed, core-filtered circles whose
    # *owning* partition (the one whose core contains the centre) also
    # holds an unconsumed core-filtered match — merge each such pair once.
    for k, model in enumerate(models):
        for j, c in enumerate(model):
            if j in consumed[k] or partitions[k].in_core(c.x, c.y):
                continue
            owner = next(
                (m for m, p in enumerate(partitions) if p.in_core(c.x, c.y)),
                None,
            )
            if owner is None or owner == k:
                continue
            best_j = None
            best_d = merge_distance
            for j2, other_c in enumerate(models[owner]):
                if j2 in consumed[owner]:
                    continue
                if partitions[owner].in_core(other_c.x, other_c.y):
                    continue  # not an orphan — it was handled above
                d = c.distance_to(other_c)
                if d <= best_d:
                    best_d = d
                    best_j = j2
            if best_j is not None:
                consumed[k].add(j)
                consumed[owner].add(best_j)
                report.circles.append(c.merged_with(models[owner][best_j]))
                report.n_rescued += 1

    return report
