"""Per-partition iteration allocation (§V).

"Each partition can be allocated the number of local iterations to
perform in the same proportion as the number of model features contained
within the partition's boundaries and that may be legitimately modified
... compared to the number of such (modifiable) features taken across
all partitions."

Implemented with the largest-remainder method so allocations are
integers that sum *exactly* to the requested total — a conservation
property the property tests pin down.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import PartitioningError

__all__ = ["allocate_iterations"]


def allocate_iterations(total: int, weights: Sequence[float]) -> List[int]:
    """Split *total* iterations proportionally to *weights*.

    Parameters
    ----------
    total:
        Number of iterations to distribute (>= 0).
    weights:
        Non-negative per-partition weights (modifiable feature counts in
        the periodic sampler).  All-zero weights yield an all-zero
        allocation — the caller decides what an idle phase means.

    Returns
    -------
    Integer allocations, same length as *weights*, summing to *total*
    (or to 0 when all weights are 0).
    """
    if total < 0:
        raise PartitioningError(f"total iterations must be >= 0, got {total}")
    w = np.asarray(list(weights), dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise PartitioningError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise PartitioningError("weights must be finite and non-negative")
    s = w.sum()
    if s == 0:
        return [0] * w.size

    # Normalise first: (w / s) is always in [0, 1], so this stays finite
    # even for denormal weights where total / s would overflow.
    exact = (w / s) * total
    base = np.floor(exact).astype(int)
    remainder = total - int(base.sum())
    if remainder:
        # Largest fractional parts get the leftover iterations;
        # ties broken by index for determinism.
        frac = exact - base
        order = np.lexsort((np.arange(w.size), -frac))
        base[order[:remainder]] += 1
    return [int(b) for b in base]
