"""Adaptive grid sizing — the §VII scaling remark, made concrete.

"More substantial reductions in runtime more in line with predictions
could be obtained by using a finer partitioning grid and load balancing
if ... the number of partitions is greater than the number of available
processors."  But *how fine*?  Too fine and the safety margin eats the
modifiable area (§VI's ``(x − y)²`` effect); too coarse and the largest
partition caps utilisation.

:func:`choose_grid_spacing` picks the spacing that maximises the
*expected parallel efficiency proxy*: cells must keep a usable interior
after the margin inset, while producing at least ``partitions_per_core``
cells per processor for the LPT scheduler to balance.

:func:`adaptive_partitioner` wraps it as a
:data:`repro.core.periodic.Partitioner` whose spacing is recomputed
from the *current* model size every cycle — as features are added or
removed by global phases, the grid follows.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.errors import PartitioningError
from repro.geometry.rect import Rect
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.partitioning.grid import grid_partitions
from repro.utils.rng import RngStream

__all__ = ["choose_grid_spacing", "adaptive_partitioner"]


def choose_grid_spacing(
    bounds: Rect,
    margin: float,
    typical_radius: float,
    n_processors: int,
    partitions_per_core: float = 3.0,
    min_interior_fraction: float = 0.25,
) -> float:
    """Grid spacing balancing utilisation against margin waste.

    Parameters
    ----------
    margin:
        The partition-safety margin (``MoveConfig.local_reach``).
    typical_radius:
        Representative feature radius; the interior must admit a feature
        of this size (spacing > 2·(margin + radius)).
    n_processors, partitions_per_core:
        Target cell count ≈ ``n_processors * partitions_per_core`` so
        LPT can smooth unequal cells.
    min_interior_fraction:
        Lower bound on the usable-interior area fraction
        ``((s − 2(margin+r))/s)²`` — refuses spacings where margin waste
        dominates.

    Returns the spacing, clamped so both constraints hold; raises when
    the image is too small for even one safe cell.
    """
    if margin < 0 or typical_radius <= 0:
        raise PartitioningError("margin must be >= 0 and typical_radius > 0")
    if n_processors < 1 or partitions_per_core <= 0:
        raise PartitioningError("need n_processors >= 1 and partitions_per_core > 0")
    if not (0.0 < min_interior_fraction < 1.0):
        raise PartitioningError("min_interior_fraction must be in (0, 1)")

    dead = 2.0 * (margin + typical_radius)
    # Smallest spacing with an acceptable interior fraction:
    #   (s - dead)/s >= sqrt(min_interior_fraction)
    root = math.sqrt(min_interior_fraction)
    s_min = dead / (1.0 - root)
    # Spacing that yields the target number of cells:
    target_cells = n_processors * partitions_per_core
    s_target = math.sqrt(bounds.area / target_cells)
    spacing = max(s_min, s_target)
    longest = max(bounds.width, bounds.height)
    if spacing > longest:
        spacing = longest  # degenerate: one cell per axis at most
    if dead >= spacing:
        raise PartitioningError(
            f"image {bounds.width:.0f}x{bounds.height:.0f} cannot host a safe "
            f"partition: dead zone {dead:.1f} >= best spacing {spacing:.1f}"
        )
    return spacing


def adaptive_partitioner(
    spec: ModelSpec,
    move_config: MoveConfig,
    n_processors: int,
    partitions_per_core: float = 3.0,
) -> Callable[[Rect, RngStream], Sequence[Rect]]:
    """A periodic-sampler partitioner with density-aware spacing.

    Spacing derives from the safety margin and the radius prior mean;
    offsets are re-randomised every cycle as §V requires.
    """
    margin = move_config.local_reach(spec)
    spacing = choose_grid_spacing(
        Rect(0.0, 0.0, float(spec.width), float(spec.height)),
        margin=margin,
        typical_radius=spec.radius_mean,
        n_processors=n_processors,
        partitions_per_core=partitions_per_core,
    )

    def partition(bounds: Rect, stream: RngStream) -> Sequence[Rect]:
        return grid_partitions(bounds, spacing, spacing, seed=stream).cells

    return partition
