"""Randomly-offset uniform partition grids (§V).

The periodic sampler partitions the image "with a uniform grid of
spacing x_m along the x-axis and y_m along the y-axis", re-drawing a
random offset for every local phase "to avoid the partition grid
imposing a long-term bias on the results".

Two constructors cover the paper's usages:

* :func:`grid_partitions` — the general uniform grid, offsets in
  ``[0, x_m) × [0, y_m)``, cells clipped to the image.
* :func:`single_point_partition` — the Fig. 2 special case: grid cells
  larger than the image, so a single random interior point splits the
  image into (up to) four rectangles "where all partitions meet".

Both guarantee the returned rectangles *tile* the image: pairwise
disjoint (half-open) and jointly covering, which the property tests
verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


from repro.errors import PartitioningError
from repro.geometry.rect import Rect
from repro.utils.rng import SeedLike, coerce_stream

__all__ = ["PartitionGrid", "grid_partitions", "single_point_partition"]


@dataclass(frozen=True)
class PartitionGrid:
    """A concrete partitioning of a bounds rectangle into cells."""

    bounds: Rect
    cells: Tuple[Rect, ...]
    offset_x: float
    offset_y: float

    def __len__(self) -> int:
        return len(self.cells)

    def total_area(self) -> float:
        return sum(c.area for c in self.cells)

    def verify_tiling(self, atol: float = 1e-9) -> None:
        """Raise unless the cells tile the bounds exactly."""
        if abs(self.total_area() - self.bounds.area) > atol * max(1.0, self.bounds.area):
            raise PartitioningError(
                f"cells cover area {self.total_area()}, bounds area {self.bounds.area}"
            )
        for i, a in enumerate(self.cells):
            if not self.bounds.contains_rect(a):
                raise PartitioningError(f"cell {i} escapes the bounds")
            for b in self.cells[i + 1 :]:
                if a.intersects(b):
                    raise PartitioningError(f"cells overlap: {a} and {b}")


def _cut_positions(lo: float, hi: float, spacing: float, offset: float) -> List[float]:
    """Grid-line coordinates strictly inside (lo, hi) for the given
    spacing and offset (offset interpreted modulo spacing from lo)."""
    first = lo + (offset % spacing)
    cuts = []
    x = first
    while x < hi:
        if lo < x:
            cuts.append(x)
        x += spacing
    return cuts


def grid_partitions(
    bounds: Rect,
    spacing_x: float,
    spacing_y: float,
    offset_x: Optional[float] = None,
    offset_y: Optional[float] = None,
    seed: SeedLike = None,
) -> PartitionGrid:
    """Build a uniform grid over *bounds*.

    Offsets default to uniform draws in ``[0, spacing)``; pass explicit
    values for deterministic layouts.  Edge cells are clipped, so cell
    sizes vary — exactly the behaviour §VI discusses when reasoning
    about unequal iteration allocations.
    """
    if spacing_x <= 0 or spacing_y <= 0:
        raise PartitioningError(
            f"grid spacing must be positive, got {spacing_x} x {spacing_y}"
        )
    stream = coerce_stream(seed)
    ox = stream.uniform(0.0, spacing_x) if offset_x is None else float(offset_x)
    oy = stream.uniform(0.0, spacing_y) if offset_y is None else float(offset_y)

    xs = [bounds.x0] + _cut_positions(bounds.x0, bounds.x1, spacing_x, ox) + [bounds.x1]
    ys = [bounds.y0] + _cut_positions(bounds.y0, bounds.y1, spacing_y, oy) + [bounds.y1]
    cells = tuple(
        Rect(xs[i], ys[j], xs[i + 1], ys[j + 1])
        for i in range(len(xs) - 1)
        for j in range(len(ys) - 1)
    )
    return PartitionGrid(bounds=bounds, cells=cells, offset_x=ox, offset_y=oy)


def single_point_partition(
    bounds: Rect,
    point: Optional[Tuple[float, float]] = None,
    seed: SeedLike = None,
    interior_margin: float = 1.0,
) -> PartitionGrid:
    """Fig. 2's partitioning: one random interior point, four rectangles.

    The point is drawn uniformly from the bounds shrunk by
    *interior_margin* so all four rectangles are non-degenerate.
    """
    stream = coerce_stream(seed)
    inner = bounds.shrink(interior_margin)
    if inner is None:
        raise PartitioningError(
            f"bounds {bounds} too small for interior margin {interior_margin}"
        )
    if point is None:
        px = stream.uniform(inner.x0, inner.x1)
        py = stream.uniform(inner.y0, inner.y1)
    else:
        px, py = point
        if not inner.contains_point(px, py):
            raise PartitioningError(
                f"split point ({px}, {py}) not strictly inside {bounds}"
            )
    cells = tuple(bounds.split_at(px, py))
    return PartitionGrid(bounds=bounds, cells=cells, offset_x=px, offset_y=py)
