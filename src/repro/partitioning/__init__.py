"""Partition machinery: grids, feature classification, allocation, merging.

This package contains everything about *where* partitions go and *which*
features they may touch; the algorithms that use them live in
:mod:`repro.core`.
"""

from repro.partitioning.grid import (
    PartitionGrid,
    single_point_partition,
    grid_partitions,
)
from repro.partitioning.classify import PartitionPlan, PartitionContext, classify_features
from repro.partitioning.allocation import allocate_iterations
from repro.partitioning.adaptive import adaptive_partitioner, choose_grid_spacing
from repro.partitioning.intelligent import segment_image, SegmentationResult
from repro.partitioning.blind import BlindPartition, blind_partitions
from repro.partitioning.merge import (
    MergeReport,
    merge_blind_models,
    concat_models,
    match_circles,
)

__all__ = [
    "PartitionGrid",
    "single_point_partition",
    "grid_partitions",
    "PartitionPlan",
    "PartitionContext",
    "classify_features",
    "allocate_iterations",
    "adaptive_partitioner",
    "choose_grid_spacing",
    "segment_image",
    "SegmentationResult",
    "BlindPartition",
    "blind_partitions",
    "MergeReport",
    "merge_blind_models",
    "concat_models",
    "match_circles",
]
