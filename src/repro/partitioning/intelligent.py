"""Intelligent partitioning pre-processor (§VIII, Fig. 3).

"A comparatively fast pre-processor may be applied to crop and segment
the image such that artifacts do not intersect the subimage boundaries"
— implemented as the paper describes for the bead image: threshold the
image, then recursively scan for rows/columns that are completely empty
and cut "on columns/rows equidistant between the closest columns/rows
containing pixel(s) that passed the threshold criteria".

The pre-processor only needs to detect where artifacts definitely *are
not*, which is why a plain threshold scan suffices (§IX's closing
remark).  A minimum gap width keeps partitions from "double-dipping":
an artifact must be far enough from a cut that it cannot influence both
sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PartitioningError
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.imaging.integral import IntegralImage

__all__ = ["SegmentationResult", "segment_image"]


@dataclass(frozen=True)
class SegmentationResult:
    """Output of the pre-processor."""

    partitions: Tuple[Rect, ...]  #: content regions, cropped + padded
    bounds: Rect  #: the full image extent that was segmented

    def __len__(self) -> int:
        return len(self.partitions)


def segment_image(
    binary: Image,
    min_gap: float = 4.0,
    pad: float = 2.0,
    max_depth: int = 16,
    trim: bool = False,
) -> SegmentationResult:
    """Segment a thresholded image along empty rows/columns.

    Parameters
    ----------
    binary:
        Threshold-filtered image; a pixel is *occupied* iff > 0.
    min_gap:
        Minimum width (pixels) of an empty run for a cut to be made
        through it.  Set this to at least twice the distance at which an
        artifact could influence a neighbouring partition.
    pad:
        Padding kept around each content region when cropping (only
        used with ``trim=True``).
    max_depth:
        Recursion limit (alternating axes), a safety bound only.
    trim:
        ``False`` (default, Table I semantics): partitions tile the full
        image, cut at gap midpoints — the paper's partition areas sum to
        ~1 of the image.  ``True``: each partition is cropped to its
        content bounding box plus *pad* (a further statespace reduction
        the "crop and segment" wording permits).

    Returns
    -------
    :class:`SegmentationResult` with one rectangle per content region.
    An entirely empty image yields zero partitions.
    """
    if min_gap <= 0:
        raise PartitioningError(f"min_gap must be positive, got {min_gap}")
    if pad < 0:
        raise PartitioningError(f"pad must be >= 0, got {pad}")
    occupied = binary.pixels > 0.0
    integral = IntegralImage(occupied.astype(np.float64))
    h, w = occupied.shape

    regions: List[Tuple[int, int, int, int]] = []  # (row0, row1, col0, col1)

    def recurse(r0: int, r1: int, c0: int, c1: int, depth: int) -> None:
        # Locate content; gaps must be interior to the *content* box so
        # that every cut has artifacts on both sides.
        content = _trim(integral, r0, r1, c0, c1)
        if content is None:
            return  # empty region — no artifacts, drop it
        cr0, cr1, cc0, cc1 = content
        if depth < max_depth:
            col_cut = _best_gap(integral, cr0, cr1, cc0, cc1, axis=1, min_gap=min_gap)
            row_cut = _best_gap(integral, cr0, cr1, cc0, cc1, axis=0, min_gap=min_gap)
        else:
            col_cut = row_cut = None
        if col_cut is None and row_cut is None:
            if trim:
                regions.append((cr0, cr1, cc0, cc1))
            else:
                regions.append((r0, r1, c0, c1))
            return
        # Prefer the axis with the widest empty gap.
        if row_cut is None or (col_cut is not None and col_cut[1] >= row_cut[1]):
            cut = col_cut[0]
            recurse(r0, r1, c0, cut, depth + 1)
            recurse(r0, r1, cut, c1, depth + 1)
        else:
            cut = row_cut[0]
            recurse(r0, cut, c0, c1, depth + 1)
            recurse(cut, r1, c0, c1, depth + 1)

    recurse(0, h, 0, w, 0)

    bounds = binary.bounds
    rects = []
    for r0, r1, c0, c1 in regions:
        if trim:
            rect = Rect(
                max(0.0, c0 - pad),
                max(0.0, r0 - pad),
                min(float(w), c1 + pad),
                min(float(h), r1 + pad),
            )
        else:
            rect = Rect(float(c0), float(r0), float(c1), float(r1))
        rects.append(rect)
    return SegmentationResult(partitions=tuple(rects), bounds=bounds)


def _trim(
    integral: IntegralImage, r0: int, r1: int, c0: int, c1: int
) -> Optional[Tuple[int, int, int, int]]:
    """Shrink the region to its occupied bounding box; None if empty."""
    if integral.rect_sum(r0, c0, r1, c1) == 0:
        return None
    while r0 < r1 and integral.rect_sum(r0, c0, r0 + 1, c1) == 0:
        r0 += 1
    while r1 > r0 and integral.rect_sum(r1 - 1, c0, r1, c1) == 0:
        r1 -= 1
    while c0 < c1 and integral.rect_sum(r0, c0, r1, c0 + 1) == 0:
        c0 += 1
    while c1 > c0 and integral.rect_sum(r0, c1 - 1, r1, c1) == 0:
        c1 -= 1
    return (r0, r1, c0, c1)


def _best_gap(
    integral: IntegralImage,
    r0: int,
    r1: int,
    c0: int,
    c1: int,
    axis: int,
    min_gap: float,
) -> Optional[Tuple[int, int]]:
    """Widest interior run of empty lines along *axis*.

    Returns ``(cut_position, gap_width)`` with the cut at the run's
    midpoint ("equidistant between the closest columns/rows containing
    pixels"), or ``None`` if no qualifying gap exists.  Only *interior*
    runs count — border emptiness is handled by trimming.
    """
    if axis == 1:  # scan columns
        lo, hi = c0, c1
        line_sum = lambda k: integral.rect_sum(r0, k, r1, k + 1)
    else:  # scan rows
        lo, hi = r0, r1
        line_sum = lambda k: integral.rect_sum(k, c0, k + 1, c1)

    best: Optional[Tuple[int, int]] = None
    run_start: Optional[int] = None
    for k in range(lo, hi + 1):
        empty = k < hi and line_sum(k) == 0
        if empty and run_start is None:
            run_start = k
        elif not empty and run_start is not None:
            run_len = k - run_start
            interior = run_start > lo and k < hi
            if interior and run_len >= min_gap:
                if best is None or run_len > best[1]:
                    best = ((run_start + k) // 2, run_len)
            run_start = None
    return best
