"""Feature classification for a local-move phase (§V).

Given a partition grid and the current configuration, decide per
partition which features are *modifiable* — safe to mutate concurrently
with anything happening in other partitions — and which must be
*frozen* but visible as read-only context.

The safety rule (made precise in
:meth:`repro.mcmc.spec.MoveConfig.local_reach` and DESIGN.md §5): a
feature is modifiable within partition P iff its disc inflated by the
local-move reach lies inside P.  Context features are all circles whose
disc intersects P at all — the partition worker needs them to build its
coverage raster and to price overlap interactions correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro.errors import PartitioningError
from repro.geometry.rect import Rect
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.mcmc.state import CircleConfiguration

__all__ = ["PartitionContext", "PartitionPlan", "classify_features"]


@dataclass(frozen=True)
class PartitionContext:
    """One partition's worth of work for a local phase."""

    rect: Rect
    #: indices (into the master configuration) the worker may modify
    modifiable: Tuple[int, ...] = ()
    #: indices whose discs intersect the partition (superset of modifiable)
    context: Tuple[int, ...] = ()

    @property
    def n_modifiable(self) -> int:
        return len(self.modifiable)

    @property
    def frozen(self) -> Tuple[int, ...]:
        mod = set(self.modifiable)
        return tuple(i for i in self.context if i not in mod)


@dataclass(frozen=True)
class PartitionPlan:
    """Classification of every feature against a partition grid."""

    margin: float
    partitions: Tuple[PartitionContext, ...]

    def __len__(self) -> int:
        return len(self.partitions)

    def total_modifiable(self) -> int:
        return sum(p.n_modifiable for p in self.partitions)

    def modifiable_counts(self) -> List[int]:
        return [p.n_modifiable for p in self.partitions]

    def verify_disjoint(self) -> None:
        """No feature may be modifiable in two partitions (tests)."""
        seen = set()
        for p in self.partitions:
            for i in p.modifiable:
                if i in seen:
                    raise PartitioningError(
                        f"feature {i} modifiable in more than one partition"
                    )
                seen.add(i)


def classify_features(
    config: CircleConfiguration,
    cells: Sequence[Rect],
    spec: ModelSpec,
    move_config: MoveConfig,
) -> PartitionPlan:
    """Classify every active circle against every partition cell.

    Returns a :class:`PartitionPlan` whose contexts reference master
    configuration indices.  Features too close to any boundary are
    modifiable nowhere (they wait for a later phase, when the freshly
    randomised grid offsets will very likely clear them — the paper's
    argument for re-drawing offsets each cycle).
    """
    margin = move_config.local_reach(spec)
    contexts: List[PartitionContext] = []
    indices = [int(i) for i in config.active_indices()]
    for rect in cells:
        modifiable: List[int] = []
        context: List[int] = []
        for i in indices:
            x = float(config.xs[i])
            y = float(config.ys[i])
            r = float(config.rs[i])
            if rect.intersects_circle(x, y, r):
                context.append(i)
                if rect.contains_circle(x, y, r, margin):
                    modifiable.append(i)
        contexts.append(
            PartitionContext(
                rect=rect, modifiable=tuple(modifiable), context=tuple(context)
            )
        )
    plan = PartitionPlan(margin=margin, partitions=tuple(contexts))
    return plan
