"""Blind partitioning geometry (§VIII, Fig. 4).

"Partition the image in some arbitrary manner, such as a simple grid
... we propose there be overlap between each partition such that the
largest expected artifact will fit inside (i.e. each partition will
extend r_MAX further than normal in each direction)."

A :class:`BlindPartition` pairs the *core* rectangle (the dotted lines
of Fig. 4 — the cell of the plain grid) with the *expanded* rectangle
(the solid lines — core grown by the overlap margin, clipped to the
image).  MCMC runs on the expanded sub-image; the merge step
(:mod:`repro.partitioning.merge`) reconciles the overlap bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import PartitioningError
from repro.geometry.rect import Rect

__all__ = ["BlindPartition", "blind_partitions"]


@dataclass(frozen=True)
class BlindPartition:
    """One blind partition: core cell + overlap-expanded processing area."""

    index: int
    core: Rect
    expanded: Rect

    def in_core(self, x: float, y: float) -> bool:
        """Is a centre point inside the core (auto-accept region)?"""
        return self.core.contains_point(x, y)

    def in_overlap(self, x: float, y: float) -> bool:
        """Is a centre point inside the overlap band (needs reconciling)?"""
        return self.expanded.contains_point(x, y) and not self.core.contains_point(x, y)


def blind_partitions(
    bounds: Rect, nx: int, ny: int, overlap: float
) -> List[BlindPartition]:
    """Split *bounds* into an ``nx × ny`` grid of cores with overlap.

    Parameters
    ----------
    nx, ny:
        Grid shape (the paper's example: 2 × 2).
    overlap:
        How far each expanded rectangle extends beyond its core on every
        side (the paper uses ``1.1 × expected radius``); clipped to the
        image bounds.

    The cores tile *bounds* exactly; expanded rectangles mutually
    overlap by ``2 × overlap`` along shared edges.
    """
    if nx <= 0 or ny <= 0:
        raise PartitioningError(f"grid shape must be positive, got {nx}x{ny}")
    if overlap < 0:
        raise PartitioningError(f"overlap must be >= 0, got {overlap}")
    min_cell = min(bounds.width / nx, bounds.height / ny)
    if overlap >= min_cell:
        raise PartitioningError(
            f"overlap {overlap} exceeds cell size {min_cell:.1f}; partitions "
            "would engulf their neighbours"
        )
    out: List[BlindPartition] = []
    xs = [bounds.x0 + bounds.width * i / nx for i in range(nx + 1)]
    ys = [bounds.y0 + bounds.height * j / ny for j in range(ny + 1)]
    k = 0
    for j in range(ny):
        for i in range(nx):
            core = Rect(xs[i], ys[j], xs[i + 1], ys[j + 1])
            expanded = core.expand(overlap).clip_to(bounds)
            assert expanded is not None  # expansion of an inner rect never vanishes
            out.append(BlindPartition(index=k, core=core, expanded=expanded))
            k += 1
    return out
