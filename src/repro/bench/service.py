"""Service throughput workload.

The paper's question is wall-clock speedup for one detection; the
service layer's question is *sustained throughput*: how many detection
jobs per second does the queue + worker pool + streaming transport
clear, and what does the result cache buy on repeat traffic?  This
workload measures exactly that, end to end over real sockets — N
clients submitting concurrently, every job streamed to completion —
first against a cold cache, then the identical traffic warm.

``scripts/bench_service.py`` wraps it into the ``BENCH_service.json``
CI artifact, the starting point of the service perf trajectory.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.engine.cache import ResultCache
from repro.service.client import ServiceClient, StreamedDetection
from repro.service.protocol import scene_job
from repro.service.server import serve_background

__all__ = ["client_round", "drive_job", "service_throughput"]


def drive_job(address, job, priority: int = 0) -> Dict[str, Any]:
    """One client's work: connect, submit (honouring backpressure),
    stream to completion; return latency facts.  Shared with the
    cluster bench — any address speaking the protocol works (service
    or router)."""
    start = time.perf_counter()
    with ServiceClient(*address) as client:
        out: StreamedDetection = client.detect(job, priority=priority)
    elapsed = time.perf_counter() - start
    return {
        "job_id": out.job_id,
        "latency_seconds": elapsed,
        "cached": out.cached,
        "n_fragments": len(out.fragments),
        "n_found": len(out.circles),
    }


def client_round(address, jobs) -> Dict[str, Any]:
    """Drive *jobs* concurrently (one client thread each) and collate
    the round's throughput/latency facts."""
    watch = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
        rows: List[Dict[str, Any]] = list(pool.map(
            lambda job: drive_job(address, job), jobs
        ))
    wall = time.perf_counter() - watch
    latencies = [r["latency_seconds"] for r in rows]
    return {
        "wall_seconds": wall,
        "jobs_per_second": len(rows) / wall if wall > 0 else float("inf"),
        "latency_mean_seconds": statistics.fmean(latencies),
        "latency_max_seconds": max(latencies),
        "n_cached": sum(1 for r in rows if r["cached"]),
        "n_fragments": sum(r["n_fragments"] for r in rows),
        "jobs": rows,
    }


def service_throughput(
    n_jobs: int = 8,
    size: int = 64,
    circles: int = 5,
    iterations: int = 400,
    workers: int = 2,
    queue_size: Optional[int] = None,
    strategy: str = "intelligent",
    seed: int = 0,
    use_cache: bool = True,
) -> Dict[str, Any]:
    """Measure cold and warm service throughput for *n_jobs* concurrent
    submissions of distinct synthetic scenes.

    Returns a JSON-able document: configuration, a cold round (every
    job computed), and — when *use_cache* — a warm round of the
    identical traffic (every job answered from the cache, measuring the
    transport + cache floor).
    """
    jobs = [
        scene_job(
            size=size, circles=circles, strategy=strategy,
            iterations=iterations, seed=seed + i,
        )
        for i in range(n_jobs)
    ]
    cache = ResultCache() if use_cache else None
    handle = serve_background(
        workers=workers,
        queue_size=queue_size or max(4, n_jobs),
        cache=cache,
    )
    try:
        address = handle.address
        cold = client_round(address, jobs)
        warm = client_round(address, jobs) if use_cache else None
        with ServiceClient(*address) as client:
            stats = client.stats()
    finally:
        handle.stop()
    return {
        "config": {
            "n_jobs": n_jobs,
            "size": size,
            "circles": circles,
            "iterations": iterations,
            "workers": workers,
            "strategy": strategy,
            "seed": seed,
            "cached": use_cache,
        },
        "cold": cold,
        "warm": warm,
        "server_stats": stats,
    }
