"""Gateway-layer workloads: what does the HTTP/SSE front cost?

Two questions, measured end to end against one
:class:`~repro.cluster.local.LocalCluster` started with
``gateway=True`` (router + gateway on one loop, thread backends —
this measures *protocol* overhead, so determinism beats core count):

``gateway_throughput``
    The same concurrent traffic driven twice — once through the
    gateway's REST+SSE surface, once through the router's TCP
    JSON-lines protocol — and the ratio of the two walls.  HTTP adds
    per-request framing and a fresh connection per call, so the ratio
    is the honest price of curl-ability; it should stay a small
    constant factor, and the baseline gate holds it there.

``sse_latency``
    Submit → ack and submit → first SSE event, per job.  The
    streaming path's time-to-first-byte is what an operator watching a
    detection accumulate actually feels.

``scripts/bench_gateway.py`` wraps both into BENCH_gateway.json.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List

from repro.bench.service import client_round
from repro.cluster.local import LocalCluster
from repro.errors import BenchmarkError
from repro.gateway.client import GatewayClient
from repro.service.protocol import scene_job

__all__ = ["gateway_throughput", "sse_latency"]


def _jobs(n_jobs: int, size: int, circles: int, iterations: int,
          strategy: str, seed: int) -> List[Dict[str, Any]]:
    return [
        scene_job(size=size, circles=circles, strategy=strategy,
                  iterations=iterations, seed=seed + i)
        for i in range(n_jobs)
    ]


def _drive_http(address, job) -> Dict[str, Any]:
    """One job through the gateway: submit, stream SSE to the terminal
    event, report the latency facts."""
    client = GatewayClient(address)
    started = time.perf_counter()
    ack = client.submit(job)
    ack_latency = time.perf_counter() - started
    first_event = None
    n_fragments = 0
    terminal = None
    for doc in client.stream(ack["job_id"]):
        if first_event is None and doc.get("event"):
            first_event = time.perf_counter() - started
        name = doc.get("event")
        if name == "partition":
            n_fragments += 1
        if name in ("result", "error", "cancelled"):
            terminal = doc
            break
    if terminal is None or terminal.get("event") != "result":
        raise BenchmarkError(
            f"gateway job did not complete: {terminal!r}"
        )
    return {
        "latency_seconds": time.perf_counter() - started,
        "ack_seconds": ack_latency,
        "first_event_seconds": first_event,
        "n_fragments": n_fragments,
        "cached": bool(terminal.get("cached")),
    }


def _http_round(address, jobs) -> Dict[str, Any]:
    watch = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
        rows = list(pool.map(lambda job: _drive_http(address, job), jobs))
    wall = time.perf_counter() - watch
    latencies = [r["latency_seconds"] for r in rows]
    return {
        "wall_seconds": wall,
        "jobs_per_second": len(rows) / wall if wall > 0 else float("inf"),
        "latency_mean_seconds": statistics.fmean(latencies),
        "latency_max_seconds": max(latencies),
        "ack_mean_seconds": statistics.fmean(r["ack_seconds"] for r in rows),
        "n_cached": sum(1 for r in rows if r["cached"]),
        "n_fragments": sum(r["n_fragments"] for r in rows),
    }


def gateway_throughput(
    n_jobs: int = 8,
    size: int = 48,
    circles: int = 4,
    iterations: int = 300,
    workers: int = 1,
    n_backends: int = 2,
    strategy: str = "intelligent",
    seed: int = 0,
) -> Dict[str, Any]:
    """The same traffic through HTTP/SSE and through TCP JSON-lines.

    Distinct seeds per round (no cache cross-talk), same cluster for
    both rounds — only the protocol differs, so the overhead ratio
    isolates the HTTP front's cost.
    """
    with LocalCluster(
        n_backends=n_backends, mode="thread", workers=workers,
        queue_size=max(8, n_jobs), router_log=False, gateway=True,
    ) as cluster:
        http = _http_round(
            cluster.gateway_address,
            _jobs(n_jobs, size, circles, iterations, strategy, seed),
        )
        tcp = client_round(
            cluster.address,
            _jobs(n_jobs, size, circles, iterations, strategy,
                  seed + 10_000),
        )
        tcp.pop("jobs", None)
    return {
        "config": {
            "n_jobs": n_jobs, "n_backends": n_backends, "workers": workers,
            "size": size, "circles": circles, "iterations": iterations,
            "strategy": strategy,
        },
        "http": http,
        "tcp": tcp,
        # >1 means HTTP was slower; the gate keeps it a small constant.
        "overhead_ratio": http["wall_seconds"] / tcp["wall_seconds"],
    }


def sse_latency(
    n_jobs: int = 6,
    size: int = 48,
    circles: int = 4,
    iterations: int = 300,
    workers: int = 2,
    strategy: str = "intelligent",
    seed: int = 500,
) -> Dict[str, Any]:
    """Submit → ack and submit → first-event latency, serially (no
    queueing noise — this measures the path, not the backlog)."""
    with LocalCluster(
        n_backends=1, mode="thread", workers=workers,
        queue_size=max(8, n_jobs), router_log=False, gateway=True,
    ) as cluster:
        rows = [
            _drive_http(cluster.gateway_address, job)
            for job in _jobs(n_jobs, size, circles, iterations,
                             strategy, seed)
        ]
    firsts = [r["first_event_seconds"] for r in rows
              if r["first_event_seconds"] is not None]
    if not firsts:
        raise BenchmarkError("no SSE events observed at all")
    return {
        "config": {"n_jobs": n_jobs, "workers": workers, "size": size,
                   "circles": circles, "iterations": iterations},
        "ack_mean_seconds": statistics.fmean(r["ack_seconds"] for r in rows),
        "first_event_mean_seconds": statistics.fmean(firsts),
        "first_event_max_seconds": max(firsts),
    }
