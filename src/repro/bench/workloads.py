"""Canonical benchmark workloads.

Each factory bundles a synthetic scene with the matching model and move
configuration.  Two track the paper's setups directly:

* :func:`fig2_workload` — §VII: "a 1024x1024 image containing 150 cells
  of mean radius 10", qg = 0.4 with 60 % local moves.  A ``scale``
  knob shrinks it proportionally (feature density preserved) so CI-
  sized runs exercise the same shape.
* :func:`bead_workload` — §IX / Fig. 3: a clumped bead image with one
  dominant clump (38 of 48 beads in the paper) and two minor ones,
  separated by empty gutters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.imaging.density import estimate_count
from repro.imaging.filters import threshold_filter
from repro.imaging.image import Image
from repro.imaging.synthetic import (
    Scene,
    SceneSpec,
    generate_bead_scene,
    generate_scene,
)
from repro.mcmc.spec import ModelSpec, MoveConfig, MoveType
from repro.utils.rng import SeedLike

__all__ = [
    "Workload",
    "fig2_workload",
    "bead_workload",
    "small_nuclei_workload",
    "synthetic_workload",
    "workload_batch",
    "image_batch",
    "request_for_image",
]

#: Move weights realising the paper's §VII setup: qg = 0.4 with the five
#: global move types, 60 % of proposals local.
PAPER_MOVE_WEIGHTS = {
    MoveType.BIRTH: 0.10,
    MoveType.DEATH: 0.10,
    MoveType.SPLIT: 0.06,
    MoveType.MERGE: 0.06,
    MoveType.REPLACE: 0.08,
    MoveType.TRANSLATE: 0.30,
    MoveType.RESIZE: 0.30,
}


@dataclass
class Workload:
    """A scene plus everything needed to run MCMC on it."""

    name: str
    scene: Scene
    filtered: Image
    model: ModelSpec
    moves: MoveConfig
    threshold: float

    @property
    def n_truth(self) -> int:
        return self.scene.n_circles

    def request(
        self,
        strategy: str,
        iterations: int,
        executor="serial",
        n_workers: Optional[int] = None,
        seed: SeedLike = None,
        record_every: int = 50,
        options: Optional[dict] = None,
    ):
        """A :class:`~repro.engine.schema.DetectionRequest` for this
        workload — the bridge from benchmark setups to the unified
        engine.

        Fills in the workload's own threshold for strategies that
        pre-filter, and hands the periodic sampler the already-filtered
        image (the §VII setup).  Extra ``options`` override/extend the
        defaults.
        """
        from repro.engine import DetectionRequest

        opts = dict(options or {})
        if strategy in ("blind", "intelligent"):
            opts.setdefault("theta", self.threshold)
        return DetectionRequest(
            image=self.filtered if strategy == "periodic" else self.scene.image,
            spec=self.model,
            move_config=self.moves,
            iterations=iterations,
            strategy=strategy,
            executor=executor,
            n_workers=n_workers,
            seed=seed,
            record_every=record_every,
            options=opts,
        )


def _build(
    name: str,
    scene: Scene,
    threshold: float,
    radius_mean: float,
    radius_max_factor: float = 2.0,
) -> Workload:
    filtered = threshold_filter(scene.image, threshold)
    est = max(estimate_count(filtered, 0.5, radius_mean), 1.0)
    model = ModelSpec(
        width=scene.spec.width,
        height=scene.spec.height,
        expected_count=est,
        radius_mean=radius_mean,
        radius_std=scene.spec.radius_std,
        radius_min=max(scene.spec.min_radius, 1.0),
        radius_max=radius_mean * radius_max_factor,
    )
    return Workload(
        name=name,
        scene=scene,
        filtered=filtered,
        model=model,
        moves=MoveConfig(weights=dict(PAPER_MOVE_WEIGHTS)),
        threshold=threshold,
    )


def fig2_workload(scale: float = 1.0, seed: SeedLike = 1024) -> Workload:
    """The §VII workload at a given linear *scale*.

    ``scale=1`` is the paper's 1024×1024 / 150 cells; ``scale=0.25``
    gives 256×256 / ~9 cells at the same density... cell count scales
    with area so the per-pixel workload matches.
    """
    if not (0.05 <= scale <= 1.0):
        raise ConfigurationError(f"scale must be in [0.05, 1], got {scale}")
    size = max(64, int(round(1024 * scale)))
    n = max(4, int(round(150 * scale * scale)))
    scene = generate_scene(
        SceneSpec(
            width=size,
            height=size,
            n_circles=n,
            mean_radius=10.0,
            radius_std=1.5,
            min_radius=3.0,
            blur_sigma=1.0,
            noise_sigma=0.02,
        ),
        seed=seed,
    )
    return _build(f"fig2@{scale:g}", scene, threshold=0.4, radius_mean=10.0)


def bead_workload(
    scale: float = 1.0, n_beads: Optional[int] = None, seed: SeedLike = 348
) -> Workload:
    """The §IX bead image: three clumps, one dominant (the paper's
    visual counts: 6 / 38 / 4 of 48 beads).

    Bead *count* scales with area (so packing density inside a clump is
    scale-invariant), clump radius scales linearly with *scale* (so a
    clump of k ∝ scale² beads of fixed radius always fits at ~40 % area
    density).
    """
    if not (0.25 <= scale <= 2.0):
        raise ConfigurationError(f"scale must be in [0.25, 2], got {scale}")
    mean_radius = 8.0
    n = n_beads if n_beads is not None else max(6, int(round(48 * scale * scale)))
    # Size the dominant clump for ~40% bead area density, then size the
    # image so three clumps plus gutters fit along the x axis.
    dominant = max(2.0, n * 38.0 / 48.0)
    clump_r = mean_radius * math.sqrt(dominant / 0.4)
    gutter = max(20.0, 40.0 * scale)
    pad = clump_r + mean_radius + 4.0
    need = 3 * 2 * pad + 2 * gutter
    width = int(math.ceil(1.15 * need))
    height = max(int(round(2 * pad + 20)), int(round(0.6 * width)))
    scene = generate_bead_scene(
        SceneSpec(
            width=width,
            height=height,
            n_circles=n,
            mean_radius=mean_radius,
            radius_std=0.8,  # "very little variation in the radii of the latex beads"
            min_radius=4.0,
            blur_sigma=0.8,
            noise_sigma=0.015,
        ),
        n_clumps=3,
        clump_radius_factor=clump_r / mean_radius,
        gutter=gutter,
        clump_weights=[6, 38, 4],
        seed=seed,
    )
    return _build(f"beads@{scale:g}", scene, threshold=0.5, radius_mean=mean_radius)


def small_nuclei_workload(seed: SeedLike = 7) -> Workload:
    """A 192×192 / 15-cell scene for tests and quick examples."""
    scene = generate_scene(
        SceneSpec(
            width=192, height=192, n_circles=15, mean_radius=8.0,
            radius_std=1.2, min_radius=3.0,
        ),
        seed=seed,
    )
    return _build("small-nuclei", scene, threshold=0.4, radius_mean=8.0)


def synthetic_workload(
    size: int = 128,
    n_circles: int = 10,
    mean_radius: float = 8.0,
    threshold: float = 0.4,
    seed: SeedLike = 0,
) -> Workload:
    """A parameterised nuclei scene — the `repro detect` CLI's workload
    factory, also handy for sizing quick experiments by hand."""
    scene = generate_scene(
        SceneSpec(
            width=size, height=size, n_circles=n_circles,
            mean_radius=mean_radius,
        ),
        seed=seed,
    )
    return _build(
        f"synthetic-{size}x{size}", scene,
        threshold=threshold, radius_mean=mean_radius,
    )


# -- single-image bridge ------------------------------------------------------

def request_for_image(
    image: Image,
    strategy: str,
    iterations: int,
    threshold: float = 0.4,
    radius_mean: float = 8.0,
    executor="serial",
    n_workers: Optional[int] = None,
    seed: SeedLike = None,
    record_every: int = 50,
    options: Optional[dict] = None,
):
    """A :class:`~repro.engine.schema.DetectionRequest` for one raw
    :class:`~repro.imaging.image.Image` — e.g. a PGM read from disk.

    The model spec is derived from the image itself: expected count from
    its thresholded foreground (the §VIII prior-allocation step),
    dimensions from the image.  Strategies that pre-filter get
    *threshold* as their ``theta``; the periodic strategy receives the
    already-filtered image — the same semantics as
    :meth:`Workload.request`.  This is the one definition
    ``repro detect --image``, ``--batch`` (:func:`image_batch`), and the
    detection service's PGM/pixel job specs share.
    """
    from repro.engine import DetectionRequest

    filtered = threshold_filter(image, threshold)
    est = max(estimate_count(filtered, 0.5, radius_mean), 1.0)
    model = ModelSpec(
        width=image.width,
        height=image.height,
        expected_count=est,
        radius_mean=radius_mean,
        radius_min=max(1.0, radius_mean / 4.0),
        radius_max=radius_mean * 2.0,
    )
    opts = dict(options or {})
    if strategy in ("blind", "intelligent"):
        opts.setdefault("theta", threshold)
    return DetectionRequest(
        image=filtered if strategy == "periodic" else image,
        spec=model,
        move_config=MoveConfig(weights=dict(PAPER_MOVE_WEIGHTS)),
        iterations=iterations,
        strategy=strategy,
        executor=executor,
        n_workers=n_workers,
        seed=seed,
        record_every=record_every,
        options=opts,
    )


# -- batch bridges ------------------------------------------------------------

def workload_batch(
    workloads,
    strategy: str,
    iterations: int,
    executor="serial",
    n_workers: Optional[int] = None,
    seed: SeedLike = None,
    record_every: int = 50,
    options: Optional[dict] = None,
):
    """A :class:`~repro.engine.schema.DetectionBatch` over *workloads*.

    The bridge from benchmark setups to the engine's batch layer
    (:func:`repro.engine.run_batch`): one request per workload via
    :meth:`Workload.request`, with per-workload seeds spawned
    deterministically from *seed* in workload order — so every derived
    request is individually reproducible, cacheable, and bit-identical
    to the same request run outside the batch.
    """
    from repro.engine import DetectionBatch, spawn_seeds

    workloads = list(workloads)
    children = spawn_seeds(seed, len(workloads))
    return DetectionBatch(requests=[
        w.request(
            strategy,
            iterations=iterations,
            executor=executor,
            n_workers=n_workers,
            seed=child,
            record_every=record_every,
            options=options,
        )
        for w, child in zip(workloads, children)
    ])


def image_batch(
    images,
    strategy: str,
    iterations: int,
    threshold: float = 0.4,
    radius_mean: float = 8.0,
    executor="serial",
    n_workers: Optional[int] = None,
    seed: SeedLike = None,
    record_every: int = 50,
    options: Optional[dict] = None,
):
    """A batch over raw :class:`~repro.imaging.image.Image` objects —
    e.g. PGM files read from disk (``repro detect --batch DIR``).

    Each image gets its own model spec: the expected count is estimated
    from its thresholded foreground (the same §VIII prior-allocation
    step the canonical workloads use), dimensions from the image.
    Strategies that pre-filter get the *threshold* as their ``theta``;
    the periodic strategy receives the already-filtered image, matching
    :meth:`Workload.request` semantics.
    """
    from repro.engine import DetectionBatch, spawn_seeds

    images = list(images)
    children = spawn_seeds(seed, len(images))
    return DetectionBatch(requests=[
        request_for_image(
            image,
            strategy,
            iterations=iterations,
            threshold=threshold,
            radius_mean=radius_mean,
            executor=executor,
            n_workers=n_workers,
            seed=child,
            record_every=record_every,
            options=options,
        )
        for image, child in zip(images, children)
    ])
