"""Cluster-layer workloads: 1-vs-N throughput, affinity, failover.

Three questions, each measured end to end over real sockets against a
:class:`~repro.cluster.local.LocalCluster`:

``cluster_throughput``
    Does adding backends add jobs/second?  The same concurrent traffic
    is driven through a router fronting 1 backend, then N; each backend
    is its own OS process (``mode="process"``), so the scaling is real
    core scaling, not GIL time-slicing.  On a single-core host the
    ratio honestly degenerates to ~1.0 — the artifact records
    ``cpu_count`` so the trajectory reader can tell.

``affinity_hit_rate``
    Does rendezvous routing actually land repeats on the node that
    cached them?  Distinct jobs cold, identical traffic warm; the hit
    rate is the fraction of warm jobs answered from a backend cache —
    with per-node caches, every hit *is* a correct affinity decision.

``failover_recovery``
    How long does a mid-job backend death cost?  One streamed job, a
    SIGKILL to its owner the moment the stream is live, and the clock
    runs until the terminal event arrives from the failover node.

``scripts/bench_cluster.py`` wraps all three into BENCH_cluster.json.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Optional

from repro.bench.service import client_round
from repro.cluster.local import LocalCluster
from repro.errors import BenchmarkError
from repro.service.protocol import scene_job

__all__ = ["cluster_throughput", "affinity_hit_rate", "failover_recovery"]


def _jobs(n_jobs: int, size: int, circles: int, iterations: int,
          strategy: str, seed: int) -> list:
    return [
        scene_job(size=size, circles=circles, strategy=strategy,
                  iterations=iterations, seed=seed + i)
        for i in range(n_jobs)
    ]


def _round(address, jobs) -> Dict[str, Any]:
    """One concurrent round via the shared service-bench driver, with
    the per-job rows dropped (artifact documents carry aggregates)."""
    doc = client_round(address, jobs)
    doc.pop("jobs", None)
    return doc


def cluster_throughput(
    backend_counts: Iterable[int] = (1, 3),
    n_jobs: int = 12,
    size: int = 48,
    circles: int = 4,
    iterations: int = 300,
    workers: int = 1,
    mode: str = "process",
    strategy: str = "intelligent",
    seed: int = 0,
) -> Dict[str, Any]:
    """Jobs/second through the router for each backend count.

    Every round reuses the same N distinct jobs (distinct seeds — no
    cache help) against a fresh cluster, router included both times, so
    the ratio isolates backend scaling from routing overhead.
    """
    rounds: Dict[str, Any] = {}
    for n in backend_counts:
        with LocalCluster(
            n_backends=n, mode=mode, workers=workers,
            queue_size=max(8, n_jobs), router_log=False,
        ) as cluster:
            jobs = _jobs(n_jobs, size, circles, iterations, strategy, seed)
            rounds[str(n)] = {
                "n_backends": n,
                **_round(cluster.address, jobs),
            }
    counts = sorted(int(k) for k in rounds)
    base, top = rounds[str(counts[0])], rounds[str(counts[-1])]
    speedup = (
        top["jobs_per_second"] / base["jobs_per_second"]
        if base["jobs_per_second"] > 0 else float("inf")
    )
    return {
        "config": {
            "n_jobs": n_jobs, "size": size, "circles": circles,
            "iterations": iterations, "workers": workers, "mode": mode,
            "strategy": strategy, "seed": seed,
        },
        "rounds": rounds,
        "speedup": speedup,
    }


def affinity_hit_rate(
    n_backends: int = 3,
    n_jobs: int = 9,
    size: int = 48,
    circles: int = 4,
    iterations: int = 300,
    mode: str = "thread",
    strategy: str = "intelligent",
    seed: int = 100,
) -> Dict[str, Any]:
    """Cold round, then the identical traffic warm; per-node caches mean
    every warm cache hit proves the router re-derived the same owner."""
    with LocalCluster(
        n_backends=n_backends, mode=mode, workers=1,
        queue_size=max(8, n_jobs), router_log=False,
    ) as cluster:
        jobs = _jobs(n_jobs, size, circles, iterations, strategy, seed)
        cold = _round(cluster.address, jobs)
        warm = _round(cluster.address, jobs)
        with cluster.client() as client:
            stats = client.stats()
    spread = {
        row["node_id"]: row["n_assigned"] for row in stats["backends"]
    }
    return {
        "config": {
            "n_backends": n_backends, "n_jobs": n_jobs, "size": size,
            "circles": circles, "iterations": iterations, "mode": mode,
            "strategy": strategy, "seed": seed,
        },
        "cold": cold,
        "warm": warm,
        "hit_rate": warm["n_cached"] / n_jobs if n_jobs else 0.0,
        "router_affinity_hits": stats["n_affinity_hits"],
        "assignment_spread": spread,
    }


def failover_recovery(
    n_backends: int = 3,
    size: int = 96,
    circles: int = 8,
    iterations: int = 8000,
    mode: str = "process",
    strategy: str = "naive",
    seed: int = 7,
    kill_after: float = 0.5,
    options: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Kill the backend running a streamed job; time the recovery.

    ``recovery_seconds`` is kill → terminal event: it covers the
    router's dead-socket detection, the excluded-node rehash, the
    re-dispatch, and the replacement's full (deterministic) re-run.
    """
    job = scene_job(size=size, circles=circles, strategy=strategy,
                    iterations=iterations, seed=seed,
                    options=dict(options or {"nx": 3, "ny": 3}))
    with LocalCluster(
        n_backends=n_backends, mode=mode, workers=1,
        queue_size=8, router_log=False,
    ) as cluster:
        submitted = time.perf_counter()
        with cluster.client() as client:
            reply = client.submit(job)
            rid, node = reply["job_id"], reply.get("node")
            index = cluster.backend_index(node)
            killed_at = None
            terminal = None
            n_events = 0
            for event in client.stream(rid):
                n_events += 1
                if killed_at is None and (
                    time.perf_counter() - submitted >= kill_after
                ):
                    cluster.kill_backend(index)
                    killed_at = time.perf_counter()
                if event.get("event") in ("result", "error", "cancelled"):
                    terminal = event
                    break
            done_at = time.perf_counter()
            stats = client.stats()
    if terminal is None or terminal.get("event") != "result":
        raise BenchmarkError(
            f"failover job did not complete: terminal={terminal!r}"
        )
    if killed_at is None:
        raise BenchmarkError(
            "job finished before the kill fired — raise iterations "
            "or lower kill_after so the failover path is actually measured"
        )
    return {
        "config": {
            "n_backends": n_backends, "size": size, "circles": circles,
            "iterations": iterations, "mode": mode, "strategy": strategy,
            "seed": seed, "kill_after": kill_after,
        },
        "killed_node": node,
        "recovery_seconds": done_at - killed_at,
        "total_seconds": done_at - submitted,
        "n_events": n_events,
        "n_found": len(terminal["result"]["circles"]),
        "router_failovers": stats["n_failovers"],
    }
