"""Host timing calibration.

The simulated-architecture experiments price iterations with the linear
model ``τ(n) = tau_base + tau_per_feature · n`` (see
:mod:`repro.parallel.machines`).  This module *measures* those two
constants on the current host by timing short chains against scenes of
different feature counts and fitting the line — the "no optimisation
without measuring" rule applied to our own substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.imaging.density import estimate_count
from repro.imaging.filters import threshold_filter
from repro.imaging.synthetic import SceneSpec, generate_scene
from repro.mcmc.chain import MarkovChain
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.machines import MachineProfile
from repro.utils.rng import SeedLike, coerce_stream

__all__ = ["CalibrationResult", "calibrate_iteration_cost"]


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted per-iteration cost model for the host."""

    tau_base: float
    tau_per_feature: float
    samples: Tuple[Tuple[int, float], ...]  #: (n_features, seconds/iter) points

    def iteration_time(self, n_features: int) -> float:
        return self.tau_base + self.tau_per_feature * n_features

    def host_profile(self, cores: int, phase_overhead: float = 2e-3) -> MachineProfile:
        """A machine profile using the measured constants."""
        return MachineProfile(
            name="host-calibrated",
            cores=cores,
            tau_base=self.tau_base,
            tau_per_feature=self.tau_per_feature,
            phase_overhead=phase_overhead,
        )


def calibrate_iteration_cost(
    feature_counts: Sequence[int] = (5, 15, 30),
    iterations: int = 3000,
    image_size: int = 256,
    mean_radius: float = 8.0,
    seed: SeedLike = 99,
) -> CalibrationResult:
    """Measure seconds/iteration at several model sizes and fit a line.

    Uses least squares over (n, τ(n)) samples; requires at least two
    distinct feature counts.  The fitted slope is clamped at zero — on
    this substrate per-iteration cost is dominated by disc rasterisation
    and may be nearly size-independent, unlike the paper's C++
    implementation (Table I shows a strong size dependence there).
    """
    counts = sorted(set(int(c) for c in feature_counts))
    if len(counts) < 2:
        raise CalibrationError("need at least two distinct feature counts")
    if min(counts) < 1:
        raise CalibrationError("feature counts must be >= 1")
    if iterations < 100:
        raise CalibrationError("need >= 100 iterations per sample for stable timing")

    stream = coerce_stream(seed)
    samples: List[Tuple[int, float]] = []
    for n in counts:
        scene = generate_scene(
            SceneSpec(
                width=image_size,
                height=image_size,
                n_circles=n,
                mean_radius=mean_radius,
                max_overlap_fraction=0.2,
            ),
            seed=stream.spawn_one(),
        )
        filtered = threshold_filter(scene.image, 0.4)
        spec = ModelSpec(
            width=image_size,
            height=image_size,
            expected_count=max(estimate_count(filtered, 0.5, mean_radius), 1.0),
            radius_mean=mean_radius,
            radius_std=1.5,
            radius_min=2.0,
            radius_max=2 * mean_radius,
        )
        post = PosteriorState(filtered, spec)
        chain = MarkovChain(
            post, MoveGenerator(spec, MoveConfig()), seed=stream.spawn_one()
        )
        # Seed the state near truth so the measured regime is the
        # converged one (the paper times converged-regime iterations).
        for c in scene.circles:
            post.insert_circle(c.x, c.y, min(max(c.r, spec.radius_min), spec.radius_max))
        result = chain.run(iterations)
        samples.append((n, result.seconds_per_iteration))

    ns = np.array([s[0] for s in samples], dtype=float)
    ts = np.array([s[1] for s in samples], dtype=float)
    slope, intercept = np.polyfit(ns, ts, 1)
    slope = max(float(slope), 0.0)
    intercept = float(intercept)
    if intercept <= 0:
        # Degenerate fit (can happen with noisy timings): fall back to
        # attributing everything to the base cost.
        intercept = float(ts.mean())
        slope = 0.0
    return CalibrationResult(
        tau_base=intercept,
        tau_per_feature=slope,
        samples=tuple(samples),
    )
