"""Host timing calibration.

The simulated-architecture experiments price iterations with the linear
model ``τ(n) = tau_base + tau_per_feature · n`` (see
:mod:`repro.parallel.machines`).  This module *measures* those two
constants on the current host by timing short chains against scenes of
different feature counts and fitting the line — the "no optimisation
without measuring" rule applied to our own substrate.

The same measurement prices the engine's ``auto`` executor selection:
:func:`derive_auto_budgets` converts the fitted per-iteration cost into
the iteration budgets where thread and process pools pay back their
start-up, and :func:`save_calibration` writes them to the calibration
file that :func:`repro.engine.executors.auto_budgets` loads — so
``auto`` dispatch is tuned by this host's measured speed instead of
fixed defaults (``repro calibrate --save``).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CalibrationError
from repro.imaging.density import estimate_count
from repro.imaging.filters import threshold_filter
from repro.imaging.synthetic import SceneSpec, generate_scene
from repro.mcmc.chain import MarkovChain
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.machines import MachineProfile
from repro.utils.rng import SeedLike, coerce_stream

__all__ = [
    "CalibrationResult",
    "AutoBudgets",
    "calibrate_iteration_cost",
    "derive_auto_budgets",
    "save_calibration",
    "load_calibration",
]


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted per-iteration cost model for the host."""

    tau_base: float
    tau_per_feature: float
    samples: Tuple[Tuple[int, float], ...]  #: (n_features, seconds/iter) points

    def iteration_time(self, n_features: int) -> float:
        return self.tau_base + self.tau_per_feature * n_features

    def host_profile(self, cores: int, phase_overhead: float = 2e-3) -> MachineProfile:
        """A machine profile using the measured constants."""
        return MachineProfile(
            name="host-calibrated",
            cores=cores,
            tau_base=self.tau_base,
            tau_per_feature=self.tau_per_feature,
            phase_overhead=phase_overhead,
        )


def calibrate_iteration_cost(
    feature_counts: Sequence[int] = (5, 15, 30),
    iterations: int = 3000,
    image_size: int = 256,
    mean_radius: float = 8.0,
    seed: SeedLike = 99,
) -> CalibrationResult:
    """Measure seconds/iteration at several model sizes and fit a line.

    Uses least squares over (n, τ(n)) samples; requires at least two
    distinct feature counts.  The fitted slope is clamped at zero — on
    this substrate per-iteration cost is dominated by disc rasterisation
    and may be nearly size-independent, unlike the paper's C++
    implementation (Table I shows a strong size dependence there).
    """
    counts = sorted(set(int(c) for c in feature_counts))
    if len(counts) < 2:
        raise CalibrationError("need at least two distinct feature counts")
    if min(counts) < 1:
        raise CalibrationError("feature counts must be >= 1")
    if iterations < 100:
        raise CalibrationError("need >= 100 iterations per sample for stable timing")

    stream = coerce_stream(seed)
    samples: List[Tuple[int, float]] = []
    for n in counts:
        scene = generate_scene(
            SceneSpec(
                width=image_size,
                height=image_size,
                n_circles=n,
                mean_radius=mean_radius,
                max_overlap_fraction=0.2,
            ),
            seed=stream.spawn_one(),
        )
        filtered = threshold_filter(scene.image, 0.4)
        spec = ModelSpec(
            width=image_size,
            height=image_size,
            expected_count=max(estimate_count(filtered, 0.5, mean_radius), 1.0),
            radius_mean=mean_radius,
            radius_std=1.5,
            radius_min=2.0,
            radius_max=2 * mean_radius,
        )
        post = PosteriorState(filtered, spec)
        chain = MarkovChain(
            post, MoveGenerator(spec, MoveConfig()), seed=stream.spawn_one()
        )
        # Seed the state near truth so the measured regime is the
        # converged one (the paper times converged-regime iterations).
        for c in scene.circles:
            post.insert_circle(c.x, c.y, min(max(c.r, spec.radius_min), spec.radius_max))
        result = chain.run(iterations)
        samples.append((n, result.seconds_per_iteration))

    ns = np.array([s[0] for s in samples], dtype=float)
    ts = np.array([s[1] for s in samples], dtype=float)
    slope, intercept = np.polyfit(ns, ts, 1)
    slope = max(float(slope), 0.0)
    intercept = float(intercept)
    if intercept <= 0:
        # Degenerate fit (can happen with noisy timings): fall back to
        # attributing everything to the base cost.
        intercept = float(ts.mean())
        slope = 0.0
    return CalibrationResult(
        tau_base=intercept,
        tau_per_feature=slope,
        samples=tuple(samples),
    )


# -- auto-executor budget derivation -------------------------------------------

#: Measured-once constants for pool start-up cost on a typical host;
#: deliberately conservative (over-estimating start-up errs toward the
#: cheaper executor, which is the safe failure mode for small jobs).
THREAD_STARTUP_SECONDS = 0.01
PROCESS_STARTUP_SECONDS = 0.5
#: Effective speedup a thread pool buys the numpy-heavy chain body
#: (partial GIL release only) vs. a process pool (true parallelism).
THREAD_EFFECTIVE_SPEEDUP = 1.3

#: On-disk schema version for the calibration file.
CALIBRATION_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class AutoBudgets:
    """Iteration budgets where pooled dispatch pays back its start-up.

    ``serial_budget``: below this *total* iteration budget stay serial;
    ``thread_budget``: below it (and above serial) use threads; above
    it, a process pool.  These are the measured replacements for
    :data:`repro.engine.executors.AUTO_SERIAL_BUDGET` /
    ``AUTO_THREAD_BUDGET``.
    """

    serial_budget: int
    thread_budget: int

    def as_dict(self) -> dict:
        return {
            "serial_budget": self.serial_budget,
            "thread_budget": self.thread_budget,
        }


def derive_auto_budgets(
    result: CalibrationResult,
    typical_features: int = 10,
    cores: Optional[int] = None,
) -> AutoBudgets:
    """Turn a measured per-iteration cost into ``auto`` thresholds.

    A pool with effective speedup *s* saves ``budget · τ · (1 − 1/s)``
    seconds over serial; it is worth its start-up cost *C* from
    ``budget > C / (τ · (1 − 1/s))``.  The serial→thread threshold uses
    thread start-up and the threads' modest effective speedup; the
    thread→process threshold uses process start-up (fork + shared-memory
    plumbing) and the core count.  τ is evaluated at *typical_features*
    per partition.
    """
    tau = result.iteration_time(typical_features)
    if tau <= 0:
        raise CalibrationError(f"non-positive iteration time {tau}")
    cores = cores or os.cpu_count() or 2
    process_speedup = max(2.0, float(min(cores, 8)))
    serial = THREAD_STARTUP_SECONDS / (tau * (1 - 1 / THREAD_EFFECTIVE_SPEEDUP))
    thread = PROCESS_STARTUP_SECONDS / (tau * (1 - 1 / process_speedup))
    serial_budget = max(1_000, int(math.ceil(serial)))
    thread_budget = max(2 * serial_budget, int(math.ceil(thread)))
    return AutoBudgets(serial_budget=serial_budget, thread_budget=thread_budget)


def save_calibration(
    result: CalibrationResult,
    path: Union[str, Path, None] = None,
    budgets: Optional[AutoBudgets] = None,
) -> Path:
    """Write *result* (and its derived budgets) to the calibration file.

    Defaults to the file ``auto`` selection looks for
    (:data:`repro.engine.executors.CALIBRATION_FILE`, overridable via
    ``$REPRO_CALIBRATION``); the engine's loaded-budget cache is cleared
    so the new numbers take effect in this process immediately.
    """
    from repro.engine.executors import _calibration_path, clear_auto_budget_cache

    target = Path(path) if path is not None else _calibration_path()
    budgets = budgets or derive_auto_budgets(result)
    payload = {
        "schema_version": CALIBRATION_SCHEMA_VERSION,
        "tau_base": result.tau_base,
        "tau_per_feature": result.tau_per_feature,
        "samples": [[n, t] for n, t in result.samples],
        "auto_budgets": budgets.as_dict(),
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    clear_auto_budget_cache()
    return target


def load_calibration(
    path: Union[str, Path],
) -> Tuple[CalibrationResult, AutoBudgets]:
    """Read a :func:`save_calibration` file back."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise CalibrationError(f"unreadable calibration file {path}: {exc}") from None
    if data.get("schema_version") != CALIBRATION_SCHEMA_VERSION:
        raise CalibrationError(
            f"calibration schema {data.get('schema_version')!r} != "
            f"{CALIBRATION_SCHEMA_VERSION}"
        )
    try:
        result = CalibrationResult(
            tau_base=float(data["tau_base"]),
            tau_per_feature=float(data["tau_per_feature"]),
            samples=tuple((int(n), float(t)) for n, t in data["samples"]),
        )
        budgets = AutoBudgets(
            serial_budget=int(data["auto_budgets"]["serial_budget"]),
            thread_budget=int(data["auto_budgets"]["thread_budget"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CalibrationError(f"malformed calibration file {path}: {exc}") from None
    return result, budgets
