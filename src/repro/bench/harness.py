"""Shared simulation drivers for the Fig. 2 and architecture benchmarks.

These helpers turn a workload description into the
:class:`~repro.parallel.simcluster.CycleSpec` streams the timing
simulator consumes, drawing partition geometry exactly the way the real
periodic sampler does (random single-point splits each cycle) so the
simulated curves inherit the genuine variability of partition sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.core.phases import PhaseSchedule
from repro.errors import ConfigurationError
from repro.geometry.rect import Rect
from repro.parallel.machines import MachineProfile
from repro.parallel.simcluster import (
    CycleSpec,
    SimResult,
    simulate_run,
    simulate_sequential,
)
from repro.partitioning.allocation import allocate_iterations
from repro.partitioning.grid import single_point_partition
from repro.utils.rng import RngStream, SeedLike, coerce_stream

__all__ = ["fig2_cycle_specs", "simulate_fig2_point", "simulate_architecture"]


def _partition_feature_counts(
    fractions: List[float], n_features: int, stream: RngStream
) -> List[int]:
    """Distribute *n_features* over partitions with multinomial sampling
    (features are uniform over the image, so a partition holds a
    Binomial(area-fraction) share)."""
    probs = np.asarray(fractions, dtype=float)
    probs = probs / probs.sum()
    return [int(c) for c in stream.rng.multinomial(n_features, probs)]


def fig2_cycle_specs(
    total_iterations: int,
    schedule: PhaseSchedule,
    n_features: int,
    bounds: Rect,
    seed: SeedLike = 0,
    modifiable_fraction: float = 0.9,
) -> Iterator[CycleSpec]:
    """Cycle specs for the §VII experiment: four single-point partitions
    re-drawn every cycle, iterations allocated by modifiable count.

    *modifiable_fraction* models the features lost to the boundary
    margin (features too close to a cut cannot be modified that cycle).
    """
    if n_features < 0:
        raise ConfigurationError(f"n_features must be >= 0, got {n_features}")
    if not (0.0 < modifiable_fraction <= 1.0):
        raise ConfigurationError(
            f"modifiable_fraction must be in (0, 1], got {modifiable_fraction}"
        )
    stream = coerce_stream(seed)
    for g_iters, l_iters in schedule.cycles(total_iterations):
        grid = single_point_partition(bounds, seed=stream)
        fractions = [c.area / bounds.area for c in grid.cells]
        counts = _partition_feature_counts(fractions, n_features, stream)
        modifiable = [
            int(round(c * modifiable_fraction)) if c > 0 else 0 for c in counts
        ]
        allocs = allocate_iterations(l_iters, modifiable)
        if sum(allocs) == 0 and l_iters > 0:
            # No partition had modifiable features (tiny models): the
            # iterations fall to the largest partition sequentially.
            allocs = [0] * len(counts)
            allocs[int(np.argmax(fractions))] = l_iters
        yield CycleSpec(
            global_iters=g_iters,
            local_allocs=allocs,
            features_per_partition=counts,
            total_features=n_features,
        )


def simulate_fig2_point(
    profile: MachineProfile,
    total_iterations: int,
    qg: float,
    global_phase_seconds: float,
    n_features: int,
    bounds: Rect,
    seed: SeedLike = 0,
) -> SimResult:
    """Simulated periodic runtime for one x-value of Fig. 2."""
    tau_seq = profile.iteration_time(n_features)
    schedule = PhaseSchedule.from_global_phase_time(qg, global_phase_seconds, tau_seq)
    specs = fig2_cycle_specs(total_iterations, schedule, n_features, bounds, seed=seed)
    return simulate_run(profile, specs)


@dataclass(frozen=True)
class ArchitectureResult:
    """One row of the simulated architecture study."""

    machine: str
    sequential_seconds: float
    periodic_seconds: float

    @property
    def reduction(self) -> float:
        """Fractional runtime reduction (the paper quotes 38 % / 29 % / 23 %)."""
        return 1.0 - self.periodic_seconds / self.sequential_seconds


def simulate_architecture(
    profile: MachineProfile,
    total_iterations: int,
    qg: float,
    n_features: int,
    bounds: Rect,
    global_phase_seconds: float = 0.020,
    seed: SeedLike = 0,
) -> ArchitectureResult:
    """Sequential vs periodic on one machine profile (§VII's sweet-spot
    settings: 20 ms global phases)."""
    seq = simulate_sequential(profile, total_iterations, n_features)
    par = simulate_fig2_point(
        profile, total_iterations, qg, global_phase_seconds, n_features, bounds,
        seed=seed,
    )
    return ArchitectureResult(
        machine=profile.name,
        sequential_seconds=seq,
        periodic_seconds=par.total_seconds,
    )
