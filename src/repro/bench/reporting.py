"""Paper-vs-measured reporting and benchmark-trajectory regression gates.

Every benchmark prints its headline numbers next to the paper's, with
the deviation, in a uniform format that EXPERIMENTS.md archives.

The artifact scripts (``scripts/bench_core.py`` / ``bench_service.py`` /
``bench_cluster.py``) additionally accept ``--baseline PATH`` — a prior
run's JSON document — and gate the current run against it with
:func:`compare_to_baseline`: any tracked metric regressing past the
threshold exits non-zero, which is how the ROADMAP's "set regression
bounds once the artifact series accumulates" lands without hard-coding
host-dependent absolute numbers into CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.utils.tables import Table

__all__ = [
    "paper_vs_measured_table",
    "BaselineMetric",
    "compare_to_baseline",
    "format_baseline_rows",
    "run_baseline_gate",
]


def paper_vs_measured_table(
    title: str,
    rows: Sequence[Tuple[str, Optional[float], Optional[float]]],
    precision: int = 4,
) -> str:
    """Render (label, paper value, measured value) rows with deviations.

    ``None`` entries render as "–" (the paper doesn't report every cell
    we measure, and vice versa).
    """
    t = Table(title, ["quantity", "paper", "measured", "deviation"], precision=precision)
    for label, paper, measured in rows:
        if paper is None or measured is None or paper == 0:
            deviation = None
        else:
            deviation = (measured - paper) / abs(paper)
        t.add_row([label, paper, measured, deviation])
    return t.render()


# -- baseline regression gating ------------------------------------------------

@dataclass(frozen=True)
class BaselineMetric:
    """One number tracked across artifact runs.

    ``path`` addresses into the JSON document (nested keys); a missing
    key in either document skips the metric (artifacts evolve —
    comparing across schema growth must not explode).  For
    ``higher_is_better`` metrics a regression is ``current <
    threshold * baseline``; for lower-is-better (runtimes) it is
    ``current > baseline / threshold`` — the same relative allowance
    either way.
    """

    label: str
    path: Tuple[str, ...]
    higher_is_better: bool = True


def _lookup(document: Dict[str, Any], path: Sequence[str]) -> Optional[float]:
    node: Any = document
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None  # bools are ints to isinstance, never metric values
    return float(node)


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    metrics: Sequence[BaselineMetric],
    threshold: float = 0.8,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Compare two artifact documents metric by metric.

    Returns ``(rows, regressions)``: one row per resolvable metric with
    its baseline/current values and ratio (oriented so >= 1.0 is good),
    and the labels of metrics that regressed past *threshold* (e.g.
    0.8 = tolerate a 20% slowdown; benchmarks on shared CI runners need
    slack or the gate cries wolf).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for metric in metrics:
        base = _lookup(baseline, metric.path)
        cur = _lookup(current, metric.path)
        if cur is not None and (base is None or base <= 0):
            # A series the current run tracks but the baseline predates
            # (artifacts grow metrics over time): visible, never gated —
            # silently dropping it would read as "compared and passed".
            rows.append({
                "label": metric.label,
                "baseline": None,
                "current": cur,
                "ratio": None,
                "regressed": False,
                "new": True,
            })
            continue
        if cur is None and base is not None:
            # The mirror case: the baseline tracked this series but the
            # current run lost it (a renamed key, a silently-skipped
            # scenario).  Disappearing data must be visible — it is
            # often the first symptom of a broken harness — but it is
            # not a numeric regression, so it never gates.
            rows.append({
                "label": metric.label,
                "baseline": base,
                "current": None,
                "ratio": None,
                "regressed": False,
                "missing": True,
            })
            continue
        if base is None or cur is None:
            continue  # in neither document — not comparable
        # A current value collapsing to zero is the worst regression a
        # higher-is-better metric can have, never a skip; a zero runtime
        # can only be an improvement for lower-is-better ones.
        if metric.higher_is_better:
            ratio = max(0.0, cur / base)
        else:
            ratio = float("inf") if cur <= 0 else base / cur
        regressed = ratio < threshold
        rows.append({
            "label": metric.label,
            "baseline": base,
            "current": cur,
            "ratio": ratio,
            "regressed": regressed,
        })
        if regressed:
            regressions.append(metric.label)
    return rows, regressions


def format_baseline_rows(rows: Sequence[Dict[str, Any]], threshold: float) -> str:
    """The comparison table the artifact scripts print."""
    t = Table(
        f"Baseline comparison (regression below {threshold:.0%})",
        ["metric", "baseline", "current", "ratio", "verdict"],
        precision=3,
    )
    for row in rows:
        if row.get("new"):
            verdict = "new (no baseline)"
        elif row.get("missing"):
            verdict = "missing vs baseline"
        elif row["regressed"]:
            verdict = "REGRESSED"
        else:
            verdict = "ok"
        t.add_row([
            row["label"], row["baseline"], row["current"], row["ratio"],
            verdict,
        ])
    return t.render()


def run_baseline_gate(
    document: Dict[str, Any],
    baseline_path: str,
    metrics: Sequence[BaselineMetric],
    threshold: float,
) -> int:
    """The whole ``--baseline`` gate the artifact scripts share: load
    the prior document, compare, print the table, and return the exit
    code (0 clean, 3 on any regression)."""
    import json
    import sys
    from pathlib import Path

    baseline = json.loads(Path(baseline_path).read_text())
    rows, regressions = compare_to_baseline(
        document, baseline, metrics, threshold=threshold
    )
    print(format_baseline_rows(rows, threshold))
    if regressions:
        print(f"REGRESSION vs {baseline_path}: {', '.join(regressions)}",
              file=sys.stderr)
        return 3
    return 0
