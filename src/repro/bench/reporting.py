"""Paper-vs-measured reporting.

Every benchmark prints its headline numbers next to the paper's, with
the deviation, in a uniform format that EXPERIMENTS.md archives.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.utils.tables import Table

__all__ = ["paper_vs_measured_table"]


def paper_vs_measured_table(
    title: str,
    rows: Sequence[Tuple[str, Optional[float], Optional[float]]],
    precision: int = 4,
) -> str:
    """Render (label, paper value, measured value) rows with deviations.

    ``None`` entries render as "–" (the paper doesn't report every cell
    we measure, and vice versa).
    """
    t = Table(title, ["quantity", "paper", "measured", "deviation"], precision=precision)
    for label, paper, measured in rows:
        if paper is None or measured is None or paper == 0:
            deviation = None
        else:
            deviation = (measured - paper) / abs(paper)
        t.add_row([label, paper, measured, deviation])
    return t.render()
