"""Benchmark support: canonical workloads, calibration, reporting.

Each module in ``benchmarks/`` regenerates one table or figure of the
paper; the shared machinery — the workload definitions matching the
paper's experimental setups, host timing calibration, and the
paper-vs-measured report formatting — lives here so benchmark files
stay declarative.
"""

from repro.bench.workloads import (
    Workload,
    fig2_workload,
    bead_workload,
    small_nuclei_workload,
)
from repro.bench.calibration import CalibrationResult, calibrate_iteration_cost
from repro.bench.core import (
    move_class_throughput,
    serial_chain_throughput,
    strategy_throughput,
)
from repro.bench.cluster import (
    affinity_hit_rate,
    cluster_throughput,
    failover_recovery,
)
from repro.bench.harness import (
    fig2_cycle_specs,
    simulate_fig2_point,
    simulate_architecture,
)
from repro.bench.reporting import (
    BaselineMetric,
    compare_to_baseline,
    format_baseline_rows,
    paper_vs_measured_table,
)

__all__ = [
    "Workload",
    "fig2_workload",
    "bead_workload",
    "small_nuclei_workload",
    "CalibrationResult",
    "calibrate_iteration_cost",
    "serial_chain_throughput",
    "move_class_throughput",
    "strategy_throughput",
    "fig2_cycle_specs",
    "simulate_fig2_point",
    "simulate_architecture",
    "paper_vs_measured_table",
    "BaselineMetric",
    "compare_to_baseline",
    "format_baseline_rows",
    "affinity_hit_rate",
    "cluster_throughput",
    "failover_recovery",
]
