"""Chain-kernel hot-path benchmarks — the ``BENCH_core.json`` workload.

Three views of the Metropolis–Hastings inner loop, each measured on the
standard synthetic workload with the trial/commit kernel *and* with the
legacy apply/unapply reference (:func:`repro.mcmc.kernel.legacy_kernel`)
from bit-identical initial states:

* :func:`serial_chain_throughput` — full serial single-chain
  iterations/sec, the number every executor, batch job and service
  worker ultimately multiplies.  Asserts bit-identical final circles,
  traces and acceptance stats between the two kernels.
* :func:`move_class_throughput` — per-move-class rejection/acceptance
  cycle costs (price→rollback vs apply→unapply, price→commit vs apply),
  isolating the rejection-cost asymmetry the trial protocol removes.
* :func:`strategy_throughput` — end-to-end engine runs of all four
  strategies on the serial executor, asserting bit-identical
  ``DetectionResult`` circles.

Every function returns plain dicts ready for the JSON artifact; parity
failures raise :class:`~repro.errors.BenchmarkError` so CI fails loudly
rather than uploading numbers from diverging chains.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import BenchmarkError
from repro.bench.workloads import Workload, synthetic_workload
from repro.mcmc import (
    BirthMove,
    DeathMove,
    MarkovChain,
    MergeMove,
    MoveGenerator,
    MultiproposalChain,
    PosteriorState,
    ReplaceMove,
    ResizeMove,
    SplitMove,
    TranslateMove,
    legacy_kernel,
)
from repro.mcmc.spec import MoveType
from repro.utils.rng import RngStream

__all__ = [
    "serial_chain_throughput",
    "move_class_throughput",
    "multiproposal_throughput",
    "strategy_throughput",
    "STRATEGIES",
]

STRATEGIES = ("naive", "blind", "intelligent", "periodic")

_MOVE_CLASS = {
    MoveType.BIRTH: BirthMove,
    MoveType.DEATH: DeathMove,
    MoveType.SPLIT: SplitMove,
    MoveType.MERGE: MergeMove,
    MoveType.REPLACE: ReplaceMove,
    MoveType.TRANSLATE: TranslateMove,
    MoveType.RESIZE: ResizeMove,
}


def _fresh_chain(workload: Workload, seed: int, record_every: int = 100) -> MarkovChain:
    post = PosteriorState(workload.filtered, workload.model)
    gen = MoveGenerator(workload.model, workload.moves)
    return MarkovChain(post, gen, seed=seed, record_every=record_every)


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise BenchmarkError(f"hot-path parity violated: {what}")


def serial_chain_throughput(
    size: int = 128,
    n_circles: int = 10,
    iterations: int = 30_000,
    warmup: int = 2_000,
    seed: int = 99,
    workload_seed: int = 3,
) -> Dict:
    """Serial single-chain iterations/sec, trial kernel vs legacy
    reference, from bit-identical initial states and seeds.

    The parity gate asserts final circles, posterior/count traces,
    acceptance statistics, the cached log-posterior and the coverage
    counts all match bit-for-bit before any number is reported.
    """
    workload = synthetic_workload(size=size, n_circles=n_circles, seed=workload_seed)

    trial_chain = _fresh_chain(workload, seed)
    trial_chain.run(warmup)
    t0 = time.perf_counter()
    trial_result = trial_chain.run(iterations)
    trial_elapsed = time.perf_counter() - t0

    with legacy_kernel():
        ref_chain = _fresh_chain(workload, seed)
        ref_chain.run(warmup)
        t0 = time.perf_counter()
        ref_result = ref_chain.run(iterations)
        ref_elapsed = time.perf_counter() - t0

    _require(trial_result.final_circles == ref_result.final_circles,
             "serial-chain final circles differ")
    _require(
        trial_result.posterior_trace.values == ref_result.posterior_trace.values
        and trial_result.posterior_trace.iterations
        == ref_result.posterior_trace.iterations,
        "serial-chain posterior traces differ",
    )
    _require(trial_result.count_trace.values == ref_result.count_trace.values,
             "serial-chain count traces differ")
    _require(
        trial_result.stats.generated == ref_result.stats.generated
        and trial_result.stats.proposed == ref_result.stats.proposed
        and trial_result.stats.accepted == ref_result.stats.accepted,
        "serial-chain acceptance stats differ",
    )
    _require(trial_chain.post.log_posterior == ref_chain.post.log_posterior,
             "serial-chain cached log-posterior differs")
    _require(
        bool(np.array_equal(trial_chain.post.coverage.counts,
                            ref_chain.post.coverage.counts)),
        "serial-chain coverage counts differ",
    )

    return {
        "workload": workload.name,
        "iterations": iterations,
        "warmup": warmup,
        "acceptance_rate": trial_result.stats.acceptance_rate(),
        "trial_iters_per_second": iterations / trial_elapsed,
        "legacy_iters_per_second": iterations / ref_elapsed,
        "speedup": ref_elapsed / trial_elapsed,
        "parity": True,
    }


def multiproposal_throughput(
    size: int = 128,
    n_circles: int = 10,
    iterations: int = 30_000,
    warmup: int = 2_000,
    seed: int = 99,
    workload_seed: int = 3,
    widths: Sequence[int] = (1, 2, 4, 8),
) -> Dict:
    """K-way multiproposal round throughput across a width sweep.

    For every width the batched kernel is gated bit-for-bit against the
    sequential reference implementation (``batch=False``, identical RNG
    consumption order); width 1 is additionally gated bit-for-bit
    against :class:`~repro.mcmc.chain.MarkovChain` — the proof that the
    batched engine is the classic chain, not an approximation of it.
    Only the batched runs are timed.
    """
    workload = synthetic_workload(size=size, n_circles=n_circles, seed=workload_seed)

    def fresh_mp(width: int, batch: bool) -> MultiproposalChain:
        post = PosteriorState(workload.filtered, workload.model)
        gen = MoveGenerator(workload.model, workload.moves)
        return MultiproposalChain(
            post, gen, width=width, seed=seed, record_every=100, batch=batch
        )

    base_chain = _fresh_chain(workload, seed)
    base_chain.run(warmup)
    t0 = time.perf_counter()
    base_result = base_chain.run(iterations)
    base_elapsed = time.perf_counter() - t0
    base_ips = iterations / base_elapsed

    per_width: Dict[str, Dict] = {}
    best_width, best_ips = 0, 0.0
    for width in widths:
        chain = fresh_mp(width, batch=True)
        chain.run(warmup)
        t0 = time.perf_counter()
        result = chain.run(iterations)
        elapsed = time.perf_counter() - t0
        ips = iterations / elapsed

        ref_chain = fresh_mp(width, batch=False)
        ref_chain.run(warmup)
        ref_result = ref_chain.run(iterations)
        _require(
            result.final_circles == ref_result.final_circles
            and result.posterior_trace.values == ref_result.posterior_trace.values
            and result.posterior_trace.iterations == ref_result.posterior_trace.iterations
            and result.count_trace.values == ref_result.count_trace.values
            and result.rounds == ref_result.rounds
            and result.stats.generated == ref_result.stats.generated
            and result.stats.proposed == ref_result.stats.proposed
            and result.stats.accepted == ref_result.stats.accepted
            and chain.post.log_posterior == ref_chain.post.log_posterior,
            f"width-{width} batched round diverges from sequential reference",
        )
        if width == 1:
            _require(
                result.final_circles == base_result.final_circles
                and result.posterior_trace.values == base_result.posterior_trace.values
                and result.posterior_trace.iterations
                == base_result.posterior_trace.iterations
                and result.count_trace.values == base_result.count_trace.values
                and result.stats.generated == base_result.stats.generated
                and result.stats.proposed == base_result.stats.proposed
                and result.stats.accepted == base_result.stats.accepted
                and chain.post.log_posterior == base_chain.post.log_posterior
                and bool(np.array_equal(chain.post.coverage.counts,
                                        base_chain.post.coverage.counts)),
                "width-1 multiproposal chain diverges from MarkovChain",
            )
        per_width[str(width)] = {
            "iters_per_second": ips,
            "rounds": result.rounds,
            "iterations_per_round": result.iterations_per_round,
            "speedup_vs_single": ips / base_ips,
            "parity": True,
        }
        if ips > best_ips:
            best_width, best_ips = width, ips

    return {
        "workload": workload.name,
        "iterations": iterations,
        "warmup": warmup,
        "single_chain_iters_per_second": base_ips,
        "widths": per_width,
        "best_width": best_width,
        "best_speedup_vs_single": best_ips / base_ips,
    }


def move_class_throughput(
    size: int = 128,
    n_circles: int = 10,
    cycles: int = 4_000,
    equilibrate: int = 3_000,
    seed: int = 7,
    workload_seed: int = 3,
    move_types: Optional[Sequence[MoveType]] = None,
) -> Dict:
    """Per-move-class price→rollback vs apply→unapply cycle throughput.

    For each move class, *cycles* proposals of exactly that class are
    drawn (identical RNG streams on both sides) against an equilibrated
    state and priced-then-rejected — the dominant path at 20–40 %
    acceptance.  The rejected cycle is where the trial protocol removes
    the second rasterisation, so this is the per-class view of the
    speedup.  Parity asserts the state survives both loops unchanged
    and both kernels price every proposal identically.
    """
    workload = synthetic_workload(size=size, n_circles=n_circles, seed=workload_seed)
    move_types = list(move_types) if move_types is not None else list(MoveType)

    def equilibrated() -> MarkovChain:
        chain = _fresh_chain(workload, seed)
        chain.run(equilibrate)
        return chain

    per_class: Dict[str, Dict] = {}
    for mt in move_types:
        trial_chain = equilibrated()
        with legacy_kernel():
            ref_chain = equilibrated()

        def reject_cycles(chain: MarkovChain, use_trial: bool, stream_seed: int):
            # Single-class generators would skew reverse densities, so
            # class-specific proposals are drawn from a full-weight
            # generator via its public per-class hook.
            post, gen = chain.post, chain.gen
            stream = RngStream(seed=stream_seed)
            lp0 = post.log_posterior
            deltas: List[float] = []
            n_priced = 0
            t0 = time.perf_counter()
            for _ in range(cycles):
                move = gen.generate_of_type(mt, post, stream)
                if not move.is_valid(post):
                    continue
                if use_trial:
                    deltas.append(move.price(post))
                    move.rollback(post)
                else:
                    deltas.append(move.apply(post))
                    move.unapply(post)
                n_priced += 1
            elapsed = time.perf_counter() - t0
            _require(post.log_posterior == lp0,
                     f"{mt.value} reject cycle left the posterior changed")
            return elapsed, n_priced, deltas

        trial_elapsed, n_trial, trial_deltas = reject_cycles(trial_chain, True, 1000)
        with legacy_kernel():
            ref_elapsed, n_ref, ref_deltas = reject_cycles(ref_chain, False, 1000)
        _require(n_trial == n_ref, f"{mt.value} proposal counts differ")
        _require(trial_deltas == ref_deltas, f"{mt.value} priced deltas differ")
        per_class[mt.value] = {
            "priced_proposals": n_trial,
            "trial_cycles_per_second": n_trial / trial_elapsed if trial_elapsed else 0.0,
            "legacy_cycles_per_second": n_ref / ref_elapsed if ref_elapsed else 0.0,
            "speedup": ref_elapsed / trial_elapsed if trial_elapsed else 0.0,
            "supports_trial": _MOVE_CLASS[mt].supports_trial,
        }
    return {"workload": workload.name, "cycles": cycles, "classes": per_class}


def strategy_throughput(
    size: int = 128,
    n_circles: int = 10,
    iterations: int = 4_000,
    seed: int = 11,
    workload_seed: int = 3,
    strategies: Sequence[str] = STRATEGIES,
) -> Dict:
    """End-to-end engine runs per strategy (serial executor), trial vs
    legacy kernel, asserting bit-identical detected circles."""
    from repro.engine import run as engine_run

    workload = synthetic_workload(size=size, n_circles=n_circles, seed=workload_seed)
    out: Dict[str, Dict] = {}
    for strategy in strategies:
        request = workload.request(strategy, iterations, executor="serial", seed=seed)
        t0 = time.perf_counter()
        trial_result = engine_run(request)
        trial_elapsed = time.perf_counter() - t0
        with legacy_kernel():
            t0 = time.perf_counter()
            ref_result = engine_run(request)
            ref_elapsed = time.perf_counter() - t0
        _require(trial_result.circles == ref_result.circles,
                 f"strategy {strategy!r} detected circles differ")
        out[strategy] = {
            "n_found": trial_result.n_found,
            "trial_seconds": trial_elapsed,
            "legacy_seconds": ref_elapsed,
            "trial_iters_per_second": iterations / trial_elapsed,
            "legacy_iters_per_second": iterations / ref_elapsed,
            "speedup": ref_elapsed / trial_elapsed,
            "parity": True,
        }
    return {
        "workload": workload.name,
        "iterations": iterations,
        "strategies": out,
    }
