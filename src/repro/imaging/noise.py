"""Noise models for synthetic scenes.

Real micrographs carry sensor noise; the synthetic scenes inject it so
the likelihood term is exercised on realistic (non-binary) data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImagingError
from repro.imaging.image import Image
from repro.utils.rng import SeedLike, as_generator

__all__ = ["add_gaussian_noise", "add_salt_pepper"]


def add_gaussian_noise(img: Image, sigma: float, seed: SeedLike = None) -> Image:
    """Additive Gaussian pixel noise, clipped back to [0, 1]."""
    if sigma < 0:
        raise ImagingError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return img.copy()
    rng = as_generator(seed)
    noisy = img.pixels + rng.normal(0.0, sigma, size=img.shape)
    return Image(np.clip(noisy, 0.0, 1.0), copy=False)


def add_salt_pepper(
    img: Image, fraction: float, seed: SeedLike = None
) -> Image:
    """Salt-and-pepper noise: *fraction* of pixels forced to 0 or 1.

    Used by robustness tests to check the density estimator and the
    intelligent-partitioning pre-processor degrade gracefully on
    corrupted inputs.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ImagingError(f"fraction must be in [0, 1], got {fraction}")
    if fraction == 0:
        return img.copy()
    rng = as_generator(seed)
    out = img.pixels.copy()
    mask = rng.random(img.shape) < fraction
    values = rng.random(img.shape) < 0.5
    out[mask] = values[mask].astype(np.float64)
    return Image(out, copy=False)
