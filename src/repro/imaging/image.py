"""The image container.

A thin, validated wrapper around a 2-D ``float64`` numpy array with
intensities in ``[0, 1]`` — the format produced by the paper's threshold
filter and consumed by the likelihood.  Coordinates follow the geometry
package's convention: pixel ``(row i, col j)`` covers the unit square
``[j, j+1) × [i, i+1)`` with centre ``(j + 0.5, i + 0.5)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ImagingError
from repro.geometry.rect import Rect

__all__ = ["Image"]


class Image:
    """A 2-D grayscale image with intensities in [0, 1].

    Parameters
    ----------
    pixels:
        2-D array-like; converted to C-contiguous ``float64``.
    copy:
        Copy the input (default) or adopt it in place when possible.
    """

    __slots__ = ("_pixels",)

    def __init__(self, pixels: np.ndarray, copy: bool = True) -> None:
        arr = np.array(pixels, dtype=np.float64, copy=copy, order="C")
        if arr.ndim != 2:
            raise ImagingError(f"image must be 2-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ImagingError("image must be non-empty")
        if not np.all(np.isfinite(arr)):
            raise ImagingError("image contains non-finite pixels")
        lo, hi = float(arr.min()), float(arr.max())
        if lo < 0.0 or hi > 1.0:
            raise ImagingError(
                f"image intensities must lie in [0, 1], got range [{lo}, {hi}]"
            )
        self._pixels = arr

    # -- basic properties ---------------------------------------------------
    @property
    def pixels(self) -> np.ndarray:
        """The underlying (height, width) float64 array."""
        return self._pixels

    @property
    def height(self) -> int:
        return self._pixels.shape[0]

    @property
    def width(self) -> int:
        return self._pixels.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self._pixels.shape  # type: ignore[return-value]

    @property
    def bounds(self) -> Rect:
        """The image extent as a rectangle: [0, width) × [0, height)."""
        return Rect(0.0, 0.0, float(self.width), float(self.height))

    # -- views ---------------------------------------------------------------
    def crop(self, rect: Rect) -> "Image":
        """A copy of the pixels whose centres lie inside *rect*.

        *rect* is clipped to the image bounds first; an empty result raises.
        """
        clipped = rect.clip_to(self.bounds)
        if clipped is None:
            raise ImagingError(f"crop rect {rect} lies outside image bounds")
        rows, cols = clipped.pixel_slices()
        sub = self._pixels[rows, cols]
        if sub.size == 0:
            raise ImagingError(f"crop rect {rect} covers no pixel centres")
        return Image(sub)

    def view(self, rect: Rect) -> np.ndarray:
        """A numpy *view* (no copy) of the pixels inside *rect* ∩ bounds."""
        clipped = rect.clip_to(self.bounds)
        if clipped is None:
            return self._pixels[0:0, 0:0]
        rows, cols = clipped.pixel_slices()
        return self._pixels[rows, cols]

    def blank_outside(self, rect: Rect, fill: float = 0.0) -> "Image":
        """A copy with everything outside *rect* set to *fill*.

        §IX of the paper: for intelligent partitioning "the pixel data for
        neighbouring partitions will be blanked out", keeping likelihood
        code oblivious to partitioning.
        """
        if not (0.0 <= fill <= 1.0):
            raise ImagingError(f"fill must be in [0, 1], got {fill}")
        out = np.full_like(self._pixels, fill)
        clipped = rect.clip_to(self.bounds)
        if clipped is not None:
            rows, cols = clipped.pixel_slices()
            out[rows, cols] = self._pixels[rows, cols]
        return Image(out, copy=False)

    def copy(self) -> "Image":
        return Image(self._pixels, copy=True)

    # -- comparisons ---------------------------------------------------------
    def allclose(self, other: "Image", atol: float = 1e-12) -> bool:
        return self.shape == other.shape and bool(
            np.allclose(self._pixels, other._pixels, atol=atol)
        )

    def __repr__(self) -> str:
        return f"Image({self.height}x{self.width}, mean={self._pixels.mean():.3f})"
