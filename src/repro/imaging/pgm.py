"""Minimal PGM (portable graymap) I/O.

Examples write their stage outputs (filtered image, partition overlays)
as binary PGM so results can be viewed with any image tool, without a
PIL/matplotlib dependency.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ImagingError
from repro.imaging.image import Image

__all__ = ["write_pgm", "read_pgm"]

_MAXVAL = 255


def write_pgm(img: Image, path: Union[str, Path]) -> None:
    """Write *img* as a binary (P5) PGM file, 8 bits per pixel."""
    data = np.clip(np.rint(img.pixels * _MAXVAL), 0, _MAXVAL).astype(np.uint8)
    header = f"P5\n{img.width} {img.height}\n{_MAXVAL}\n".encode("ascii")
    Path(path).write_bytes(header + data.tobytes())


def read_pgm(path: Union[str, Path]) -> Image:
    """Read a binary (P5) PGM file written by :func:`write_pgm`.

    Supports arbitrary whitespace and ``#`` comments in the header, per
    the netpbm spec; only maxval <= 255 (8-bit) files are accepted.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise ImagingError(f"cannot read PGM file {path}: {exc}") from None
    # Header: magic, width, height, maxval — tokens separated by whitespace,
    # comments run from '#' to end of line.
    tokens = []
    pos = 0
    while len(tokens) < 4:
        if pos >= len(raw):
            raise ImagingError(f"truncated PGM header in {path}")
        m = re.match(rb"\s*(#[^\n]*\n)*\s*(\S+)", raw[pos:])
        if m is None:
            raise ImagingError(f"malformed PGM header in {path}")
        tokens.append(m.group(2))
        pos += m.end()
    magic, w_s, h_s, maxval_s = tokens
    if magic != b"P5":
        raise ImagingError(f"unsupported PGM magic {magic!r} (only binary P5)")
    try:
        width, height, maxval = int(w_s), int(h_s), int(maxval_s)
    except ValueError:
        raise ImagingError(f"non-numeric PGM header fields in {path}") from None
    if maxval <= 0 or maxval > 255:
        raise ImagingError(f"unsupported PGM maxval {maxval} (need 1..255)")
    # Exactly one whitespace byte separates header from raster.
    pos += 1
    expected = width * height
    available = len(raw) - pos
    if available < expected:
        raise ImagingError(
            f"PGM raster truncated: expected {expected} bytes, got {available}"
        )
    data = np.frombuffer(raw, dtype=np.uint8, count=expected, offset=pos)
    return Image(data.reshape(height, width).astype(np.float64) / maxval, copy=False)
