"""Artifact-count estimation from pixel data — eq. (5) of the paper.

    n_hat = |{(x, y) in M : I(x, y) > theta}| / (pi * r^2)

where *M* is the pixel set of the image or sub-image, θ a threshold and
*r* the (assumed constant) expected artifact radius.  The paper uses
this to assign per-partition prior knowledge ("# obj. (thresh.)" row of
Table I) instead of naively scaling the whole-image count by area
("# obj. (density)" row).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ImagingError
from repro.geometry.rect import Rect
from repro.imaging.image import Image

__all__ = ["estimate_count", "estimate_count_in_rect", "estimate_count_by_area"]


def estimate_count(img: Image, theta: float, radius: float) -> float:
    """Eq. (5): bright-pixel count divided by the area of one artifact.

    Parameters
    ----------
    theta:
        Intensity threshold; pixels strictly above it are counted.
    radius:
        Expected artifact radius (assumed constant across the image —
        the paper notes this is safe "for these images at least").
    """
    if not (0.0 <= theta <= 1.0):
        raise ImagingError(f"theta must be in [0, 1], got {theta}")
    if radius <= 0:
        raise ImagingError(f"radius must be positive, got {radius}")
    bright = int(np.count_nonzero(img.pixels > theta))
    return bright / (math.pi * radius * radius)


def estimate_count_in_rect(
    img: Image, rect: Rect, theta: float, radius: float
) -> float:
    """Eq. (5) restricted to the pixels of *rect* (a partition).

    This is the mechanism §VIII prescribes: "the same mechanism used to
    obtain the estimate for the complete image should be applied to the
    partitions".
    """
    clipped = rect.clip_to(img.bounds)
    if clipped is None:
        return 0.0
    rows, cols = clipped.pixel_slices()
    sub = img.pixels[rows, cols]
    if sub.size == 0:
        return 0.0
    if not (0.0 <= theta <= 1.0):
        raise ImagingError(f"theta must be in [0, 1], got {theta}")
    if radius <= 0:
        raise ImagingError(f"radius must be positive, got {radius}")
    bright = int(np.count_nonzero(sub > theta))
    return bright / (math.pi * radius * radius)


def estimate_count_by_area(
    total_count: float, rect: Rect, bounds: Optional[Rect] = None, image: Optional[Image] = None
) -> float:
    """The *naive* per-partition estimate: whole-image count scaled by area.

    Table I's "# obj. (density)" row: assume artifact density is uniform
    and allocate ``total_count * (partition area / image area)``.  The
    paper includes it to show how badly it misallocates prior knowledge
    on clumped data; we implement it for the same comparison.
    """
    if bounds is None:
        if image is None:
            raise ImagingError("estimate_count_by_area needs bounds or image")
        bounds = image.bounds
    clipped = rect.clip_to(bounds)
    if clipped is None:
        return 0.0
    return total_count * (clipped.area / bounds.area)
