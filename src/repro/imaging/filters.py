"""Image filters.

Three filters cover everything the paper needs:

* :func:`emphasise` — the "filter to emphasise the colour of interest"
  (§III): a soft contrast ramp that maps a band of interest to [0, 1].
* :func:`threshold_filter` — the binary filter of eq. (5) / Fig. 3
  (top-right): pixels above θ become 1, the rest 0.
* :func:`gaussian_blur` — separable Gaussian convolution, used by the
  synthetic renderer's point-spread model (implemented from scratch; no
  scipy.ndimage dependency in the hot path).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.errors import ImagingError
from repro.imaging.image import Image

__all__ = ["threshold_filter", "gaussian_blur", "emphasise"]

ArrayOrImage = Union[np.ndarray, Image]


def _as_array(img: ArrayOrImage) -> np.ndarray:
    if isinstance(img, Image):
        return img.pixels
    arr = np.asarray(img, dtype=np.float64)
    if arr.ndim != 2:
        raise ImagingError(f"expected 2-D image data, got shape {arr.shape}")
    return arr


def threshold_filter(img: ArrayOrImage, theta: float) -> Image:
    """Binary threshold: 1.0 where intensity > θ, else 0.0.

    This is the filter of eq. (5): "applying a threshold filter and
    counting how many pixels are of high intensity", with θ = 0.5 in the
    paper's bead experiment.
    """
    if not (0.0 <= theta <= 1.0):
        raise ImagingError(f"threshold must be in [0, 1], got {theta}")
    arr = _as_array(img)
    return Image((arr > theta).astype(np.float64), copy=False)


def emphasise(img: ArrayOrImage, low: float, high: float) -> Image:
    """Soft contrast ramp: 0 below *low*, 1 above *high*, linear between.

    Models the paper's colour-of-interest emphasis step that precedes
    thresholding; with synthetic grayscale scenes the band is an
    intensity band rather than a colour channel.
    """
    if not (0.0 <= low < high <= 1.0):
        raise ImagingError(f"need 0 <= low < high <= 1, got low={low}, high={high}")
    arr = _as_array(img)
    return Image(np.clip((arr - low) / (high - low), 0.0, 1.0), copy=False)


def _gaussian_kernel(sigma: float) -> np.ndarray:
    radius = max(1, int(math.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    k = np.exp(-0.5 * (xs / sigma) ** 2)
    return k / k.sum()


def gaussian_blur(img: ArrayOrImage, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with reflective boundary handling.

    Returns a raw array (the renderer clips/normalises afterwards); pass
    the result to :class:`~repro.imaging.image.Image` to re-wrap.
    """
    if sigma < 0:
        raise ImagingError(f"sigma must be >= 0, got {sigma}")
    arr = _as_array(img)
    if sigma == 0:
        return arr.copy()
    kernel = _gaussian_kernel(sigma)
    radius = (len(kernel) - 1) // 2

    # Convolve rows then columns, padding by reflection.
    padded = np.pad(arr, ((0, 0), (radius, radius)), mode="reflect")
    rows = _convolve_axis(padded, kernel, axis=1)
    padded = np.pad(rows, ((radius, radius), (0, 0)), mode="reflect")
    return _convolve_axis(padded, kernel, axis=0)


def _convolve_axis(padded: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """Valid-mode 1-D convolution along *axis* via a strided window sum."""
    n = len(kernel)
    if axis == 1:
        out = np.zeros((padded.shape[0], padded.shape[1] - n + 1))
        for i, w in enumerate(kernel):
            out += w * padded[:, i : i + out.shape[1]]
    else:
        out = np.zeros((padded.shape[0] - n + 1, padded.shape[1]))
        for i, w in enumerate(kernel):
            out += w * padded[i : i + out.shape[0], :]
    return out
