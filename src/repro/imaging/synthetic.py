"""Synthetic scene generation.

Stands in for the paper's input data (stained white-blood-cell nuclei
micrographs and latex beads in a petri dish).  A *scene* is a list of
ground-truth circles plus the rendered image; the renderer draws
anti-aliased discs of high intensity on a dark background, optionally
blurred and noised, matching the paper's abstraction of the task as
"finding circles of high colour intensity" in a filtered image.

Two layout families are provided:

* :func:`generate_scene` — nuclei-like scenes: circles placed uniformly
  at random with bounded overlap (the Fig. 2 workload: 1024×1024 image,
  150 cells of mean radius 10).
* :func:`generate_bead_scene` — bead-like scenes: circles placed in a
  small number of well-separated *clumps* with empty gutters between
  them, which is what makes intelligent partitioning effective on the
  paper's Fig. 3 image.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ImagingError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.imaging.filters import gaussian_blur
from repro.imaging.noise import add_gaussian_noise
from repro.utils.rng import RngStream, SeedLike, coerce_stream as _coerce

__all__ = ["SceneSpec", "Scene", "generate_scene", "generate_bead_scene", "render_scene"]


@dataclass(frozen=True)
class SceneSpec:
    """Parameters of a synthetic nuclei scene.

    Attributes
    ----------
    width, height:
        Image dimensions in pixels.
    n_circles:
        Number of ground-truth artifacts.
    mean_radius, radius_std:
        Gaussian radius distribution (truncated to ``>= min_radius``).
    max_overlap_fraction:
        Rejection-sampling bound on pairwise overlap: a candidate circle
        is rejected while its maximum lens area with an accepted circle
        exceeds this fraction of the smaller disc.  0 gives disjoint
        discs; 1 disables the check.
    foreground, background:
        Intensities of disc interior and empty space.
    blur_sigma:
        Gaussian point-spread sigma applied after rasterisation (0 = off).
    noise_sigma:
        Additive Gaussian pixel noise sigma (0 = off).
    margin:
        Minimum distance from a circle's edge to the image border.
    """

    width: int
    height: int
    n_circles: int
    mean_radius: float = 10.0
    radius_std: float = 1.5
    min_radius: float = 2.0
    max_overlap_fraction: float = 0.05
    foreground: float = 0.9
    background: float = 0.05
    blur_sigma: float = 1.0
    noise_sigma: float = 0.02
    margin: float = 2.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ImagingError(f"scene dimensions must be positive, got {self.width}x{self.height}")
        if self.n_circles < 0:
            raise ImagingError(f"n_circles must be >= 0, got {self.n_circles}")
        if self.mean_radius <= 0 or self.min_radius <= 0:
            raise ImagingError("radii must be positive")
        if not (0.0 <= self.background < self.foreground <= 1.0):
            raise ImagingError(
                "need 0 <= background < foreground <= 1, got "
                f"bg={self.background}, fg={self.foreground}"
            )
        if not (0.0 <= self.max_overlap_fraction <= 1.0):
            raise ImagingError("max_overlap_fraction must be in [0, 1]")


@dataclass
class Scene:
    """A generated scene: ground truth circles + rendered image."""

    spec: SceneSpec
    circles: List[Circle]
    image: Image

    @property
    def n_circles(self) -> int:
        return len(self.circles)

    def bounds(self) -> Rect:
        return self.image.bounds


def _sample_radius(spec: SceneSpec, stream: RngStream) -> float:
    """Truncated-Gaussian radius draw."""
    for _ in range(1000):
        r = stream.normal(spec.mean_radius, spec.radius_std)
        if r >= spec.min_radius:
            return r
    # Pathological spec (mean far below min): fall back to the floor.
    return spec.min_radius


def _max_overlap_fraction(c: Circle, accepted: Sequence[Circle]) -> float:
    from repro.geometry.overlap import circle_circle_overlap_area

    worst = 0.0
    for other in accepted:
        area = circle_circle_overlap_area(c.x, c.y, c.r, other.x, other.y, other.r)
        if area > 0.0:
            smaller = math.pi * min(c.r, other.r) ** 2
            worst = max(worst, area / smaller)
    return worst


def generate_scene(spec: SceneSpec, seed: SeedLike = None) -> Scene:
    """Generate a nuclei-like scene: uniform placement, bounded overlap.

    Placement uses rejection sampling; if the image is too crowded to
    place all circles within the overlap bound after many attempts, an
    :class:`~repro.errors.ImagingError` is raised (rather than silently
    under-filling the scene).
    """
    stream = _coerce(seed)
    circles: List[Circle] = []
    attempts_per_circle = 2000
    for i in range(spec.n_circles):
        placed = False
        for _ in range(attempts_per_circle):
            r = _sample_radius(spec, stream)
            reach = r + spec.margin
            if 2 * reach >= min(spec.width, spec.height):
                continue
            x = stream.uniform(reach, spec.width - reach)
            y = stream.uniform(reach, spec.height - reach)
            c = Circle(x, y, r)
            if (
                spec.max_overlap_fraction >= 1.0
                or _max_overlap_fraction(c, circles) <= spec.max_overlap_fraction
            ):
                circles.append(c)
                placed = True
                break
        if not placed:
            raise ImagingError(
                f"could not place circle {i + 1}/{spec.n_circles}: scene too crowded "
                f"(overlap bound {spec.max_overlap_fraction})"
            )
    image = render_scene(spec, circles, seed=stream.spawn_one())
    return Scene(spec=spec, circles=circles, image=image)


def generate_bead_scene(
    spec: SceneSpec,
    n_clumps: int = 3,
    clump_radius_factor: float = 6.0,
    gutter: float = 40.0,
    clump_weights: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> Scene:
    """Generate a bead-like scene: circles concentrated in separated clumps.

    Clump centres are placed so that the axis-aligned gaps between clump
    bounding boxes exceed *gutter* pixels, guaranteeing the empty
    rows/columns that the intelligent-partitioning pre-processor scans
    for.  ``clump_weights`` controls how the ``spec.n_circles`` artifacts
    are distributed across clumps (defaults to uniform); the paper's
    Fig. 3 scene has one dominant clump (38 of 48 beads) and two minor
    ones.
    """
    stream = _coerce(seed)
    if n_clumps <= 0:
        raise ImagingError(f"n_clumps must be >= 1, got {n_clumps}")
    if clump_weights is not None and len(clump_weights) != n_clumps:
        raise ImagingError(
            f"clump_weights has {len(clump_weights)} entries for {n_clumps} clumps"
        )

    clump_r = clump_radius_factor * spec.mean_radius

    # Allocate circles to clumps.
    if clump_weights is None:
        weights = np.full(n_clumps, 1.0 / n_clumps)
    else:
        w = np.asarray(clump_weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ImagingError("clump_weights must be non-negative with positive sum")
        weights = w / w.sum()
    counts = np.floor(weights * spec.n_circles).astype(int)
    # Distribute the remainder to the heaviest clumps.
    for idx in np.argsort(-weights)[: spec.n_circles - int(counts.sum())]:
        counts[idx] += 1

    # Place clump centres with separated bounding boxes (grid layout with
    # jitter keeps this deterministic and guaranteed to terminate).
    centres = _place_clump_centres(spec, n_clumps, clump_r, gutter, stream)

    circles: List[Circle] = []
    for (cx, cy), count in zip(centres, counts):
        placed = 0
        attempts = 0
        local: List[Circle] = []
        while placed < count:
            attempts += 1
            if attempts > 20000:
                raise ImagingError(
                    f"could not fill clump at ({cx:.0f}, {cy:.0f}) with {count} beads"
                )
            r = _sample_radius(spec, stream)
            # Bias towards the clump centre for a clumped look.
            rho = clump_r * math.sqrt(stream.random())
            theta = stream.uniform(0.0, 2.0 * math.pi)
            x = cx + rho * math.cos(theta)
            y = cy + rho * math.sin(theta)
            reach = r + spec.margin
            if not (reach <= x <= spec.width - reach and reach <= y <= spec.height - reach):
                continue
            c = Circle(x, y, r)
            if _max_overlap_fraction(c, local) <= spec.max_overlap_fraction:
                local.append(c)
                placed += 1
        circles.extend(local)

    image = render_scene(spec, circles, seed=stream.spawn_one())
    return Scene(spec=spec, circles=circles, image=image)


def _place_clump_centres(
    spec: SceneSpec,
    n_clumps: int,
    clump_r: float,
    gutter: float,
    stream: RngStream,
) -> List[Tuple[float, float]]:
    """Clump centres on a jittered diagonal-ish grid with guaranteed gutters."""
    pad = clump_r + spec.mean_radius + spec.margin
    usable_w = spec.width - 2 * pad
    usable_h = spec.height - 2 * pad
    need = n_clumps * 2 * pad + (n_clumps - 1) * gutter
    if need > spec.width and need > spec.height:
        raise ImagingError(
            f"image {spec.width}x{spec.height} too small for {n_clumps} clumps of "
            f"radius {clump_r:.0f} with gutter {gutter:.0f}"
        )
    centres: List[Tuple[float, float]] = []
    # Lay clumps along the longer axis; jitter the other axis.
    along_x = spec.width >= spec.height
    span = usable_w if along_x else usable_h
    step = span / max(1, n_clumps - 1) if n_clumps > 1 else 0.0
    for k in range(n_clumps):
        main = pad + k * step if n_clumps > 1 else pad + span / 2.0
        cross_lo, cross_hi = pad, (spec.height if along_x else spec.width) - pad
        cross = stream.uniform(cross_lo, cross_hi) if cross_hi > cross_lo else cross_lo
        centres.append((main, cross) if along_x else (cross, main))
    return centres


def render_scene(
    spec: SceneSpec, circles: Sequence[Circle], seed: SeedLike = None
) -> Image:
    """Rasterise circles onto a background, then blur and noise.

    Discs are drawn with one-pixel anti-aliased edges: pixel intensity
    interpolates between foreground and background according to the
    signed distance of the pixel centre from the disc boundary.
    """
    h, w = spec.height, spec.width
    canvas = np.full((h, w), spec.background, dtype=np.float64)

    for c in circles:
        x0 = max(0, int(math.floor(c.x - c.r - 1.5)))
        x1 = min(w, int(math.ceil(c.x + c.r + 1.5)))
        y0 = max(0, int(math.floor(c.y - c.r - 1.5)))
        y1 = min(h, int(math.ceil(c.y + c.r + 1.5)))
        if x1 <= x0 or y1 <= y0:
            continue
        ys = np.arange(y0, y1, dtype=np.float64) + 0.5
        xs = np.arange(x0, x1, dtype=np.float64) + 0.5
        dist = np.hypot(xs[None, :] - c.x, ys[:, None] - c.y)
        # coverage: 1 inside, 0 outside, linear ramp across the boundary pixel
        cov = np.clip(c.r + 0.5 - dist, 0.0, 1.0)
        patch = canvas[y0:y1, x0:x1]
        np.maximum(patch, spec.background + (spec.foreground - spec.background) * cov, out=patch)

    if spec.blur_sigma > 0:
        canvas = gaussian_blur(canvas, spec.blur_sigma)
    img = Image(canvas, copy=False)
    if spec.noise_sigma > 0:
        img = add_gaussian_noise(img, spec.noise_sigma, seed=seed)
    return img
