"""Integral images (summed-area tables).

Used by the intelligent-partitioning pre-processor and the density
estimator to answer "how many bright pixels in this rectangle?" in O(1)
after O(N) preprocessing — the pre-processor scans many candidate cut
lines, so per-query recounting would be quadratic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImagingError

__all__ = ["IntegralImage"]


class IntegralImage:
    """Summed-area table over a 2-D array.

    ``table[i, j]`` holds the sum of all pixels in rows < i, cols < j, so
    rectangle sums are four lookups.
    """

    __slots__ = ("_table", "_shape")

    def __init__(self, pixels: np.ndarray) -> None:
        arr = np.asarray(pixels, dtype=np.float64)
        if arr.ndim != 2 or arr.size == 0:
            raise ImagingError(f"integral image needs non-empty 2-D data, got {arr.shape}")
        self._shape = arr.shape
        table = np.zeros((arr.shape[0] + 1, arr.shape[1] + 1), dtype=np.float64)
        np.cumsum(np.cumsum(arr, axis=0), axis=1, out=table[1:, 1:])
        self._table = table

    @property
    def shape(self):
        return self._shape

    def rect_sum(self, row0: int, col0: int, row1: int, col1: int) -> float:
        """Sum of pixels with row in [row0, row1) and col in [col0, col1).

        Indices are clipped to the image; an empty range sums to 0.
        """
        h, w = self._shape
        r0 = min(max(row0, 0), h)
        r1 = min(max(row1, 0), h)
        c0 = min(max(col0, 0), w)
        c1 = min(max(col1, 0), w)
        if r1 <= r0 or c1 <= c0:
            return 0.0
        t = self._table
        return float(t[r1, c1] - t[r0, c1] - t[r1, c0] + t[r0, c0])

    def row_sums(self) -> np.ndarray:
        """Per-row totals (used to find empty rows in O(height))."""
        t = self._table
        return (t[1:, -1] - t[:-1, -1]).copy()

    def col_sums(self) -> np.ndarray:
        """Per-column totals (used to find empty columns in O(width))."""
        t = self._table
        return (t[-1, 1:] - t[-1, :-1]).copy()

    def total(self) -> float:
        return float(self._table[-1, -1])
