"""Imaging substrate: containers, synthetic scenes, filters, density estimation.

The paper's pipeline is: acquire an image, filter it to emphasise the
colour of interest, then fit a circle configuration to the *filtered*
image by RJMCMC.  This package provides every imaging piece of that
pipeline, including a parametric synthetic-scene generator that stands in
for the stained-nuclei micrographs and latex-bead photographs used in the
paper (see DESIGN.md §2 for the substitution rationale).
"""

from repro.imaging.image import Image
from repro.imaging.synthetic import (
    SceneSpec,
    Scene,
    generate_scene,
    generate_bead_scene,
    render_scene,
)
from repro.imaging.filters import threshold_filter, gaussian_blur, emphasise
from repro.imaging.noise import add_gaussian_noise, add_salt_pepper
from repro.imaging.density import (
    estimate_count,
    estimate_count_in_rect,
    estimate_count_by_area,
)
from repro.imaging.pgm import write_pgm, read_pgm
from repro.imaging.integral import IntegralImage

__all__ = [
    "Image",
    "SceneSpec",
    "Scene",
    "generate_scene",
    "generate_bead_scene",
    "render_scene",
    "threshold_filter",
    "gaussian_blur",
    "emphasise",
    "add_gaussian_noise",
    "add_salt_pepper",
    "estimate_count",
    "estimate_count_in_rect",
    "estimate_count_by_area",
    "write_pgm",
    "read_pgm",
    "IntegralImage",
]
