"""repro — reproduction of *On the Parallelisation of MCMC-based Image
Processing* (Byrd, Jarvis, Bhalerao; IEEE IPDPS Workshops 2010).

The library implements the paper's case study (reversible-jump MCMC
detection of circular artifacts in images) and all four of its
contributions:

* **periodic partitioning** (`repro.core.periodic`) — statistically
  valid data-parallel MCMC via alternating global/local move phases;
* the **runtime prediction model** (`repro.core.theory`, eqs. 2–4);
* **intelligent** and **blind image partitioning**
  (`repro.core.intelligent_pipeline`, `repro.core.blind_pipeline`) —
  aggressive, not-statistically-pure divide and conquer;
* **speculative moves** (`repro.mcmc.speculative`, the companion
  method of ref. [11]) and the **(MC)³** related-work baseline
  (`repro.mcmc.mc3`).

All four partitioning strategies run under one engine
(`repro.engine`): one `DetectionRequest`/`DetectionResult` schema, a
strategy registry (`@register_strategy`), engine-owned executor
lifecycle, and a `repro detect --strategy ... --executor ...` CLI.

Quick start::

    from repro import quickstart_detect
    scene, found, report = quickstart_detect(seed=0)
    print(report.f1)

See README.md for the full tour and DESIGN.md / EXPERIMENTS.md for the
reproduction methodology.
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    ConfigurationError,
    GeometryError,
    ImagingError,
    ChainError,
    PartitioningError,
    ExecutorError,
    CalibrationError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ImagingError",
    "ChainError",
    "PartitioningError",
    "ExecutorError",
    "CalibrationError",
    "quickstart_detect",
]


def quickstart_detect(
    size: int = 192,
    n_circles: int = 15,
    iterations: int = 20000,
    seed=0,
):
    """Generate a synthetic nuclei scene, fit it with sequential RJMCMC,
    and score the result — the library's smallest end-to-end path.

    Returns ``(scene, found_circles, match_report)``.
    """
    from repro.imaging import SceneSpec, generate_scene, threshold_filter
    from repro.mcmc import ModelSpec, MoveConfig, PosteriorState, MoveGenerator, MarkovChain
    from repro.imaging.density import estimate_count
    from repro.core.evaluation import evaluate_model
    from repro.utils.rng import coerce_stream

    stream = coerce_stream(seed)
    scene = generate_scene(
        SceneSpec(width=size, height=size, n_circles=n_circles, mean_radius=8.0),
        seed=stream.spawn_one(),
    )
    filtered = threshold_filter(scene.image, 0.4)
    spec = ModelSpec(
        width=size,
        height=size,
        expected_count=max(estimate_count(filtered, 0.5, 8.0), 1.0),
        radius_mean=8.0,
        radius_std=1.5,
        radius_min=2.0,
        radius_max=16.0,
    )
    post = PosteriorState(filtered, spec)
    chain = MarkovChain(post, MoveGenerator(spec, MoveConfig()), seed=stream.spawn_one())
    chain.run(iterations)
    found = post.snapshot_circles()
    return scene, found, evaluate_model(found, scene.circles)
