"""Shared-memory image transport for process workers.

A 1024×1024 float64 image is 8 MB; pickling it into every task message
every cycle would drown the useful work (the paper's overhead warnings
in §VI are about exactly this class of cost).  Instead the master
places the image in POSIX shared memory once; workers attach at pool
start-up and every task message carries only partition geometry and a
few hundred floats of configuration state.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.errors import ExecutorError
from repro.imaging.image import Image

__all__ = [
    "SharedImage",
    "set_worker_image",
    "get_worker_image",
    "current_worker_image",
    "clear_worker_image",
    "call_with_worker_image",
    "worker_initializer",
    "use_shared_image",
]


class SharedImage:
    """An image living in a named shared-memory block.

    The creating process owns the block (call :meth:`unlink` when done);
    workers attach read-only views via :func:`worker_initializer`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape: Tuple[int, int], owner: bool) -> None:
        self._shm = shm
        self.shape = shape
        self._owner = owner
        self.array = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)

    @classmethod
    def create(cls, image: Image) -> "SharedImage":
        """Copy *image* into a fresh shared block."""
        nbytes = image.pixels.nbytes
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        out = cls(shm, image.shape, owner=True)
        out.array[:] = image.pixels
        return out

    @classmethod
    def attach(cls, name: str, shape: Tuple[int, int]) -> "SharedImage":
        """Attach to an existing block by name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, tuple(shape), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def attach_args(self) -> Tuple[str, Tuple[int, int]]:
        """(name, shape) to hand to :func:`worker_initializer`."""
        return (self._shm.name, self.shape)

    def as_image(self) -> Image:
        """A validated :class:`Image` copy of the shared pixels."""
        return Image(self.array, copy=True)

    def close(self) -> None:
        """Detach this process's mapping."""
        # Drop the numpy view first: SharedMemory.close() fails while
        # exported buffers are alive.
        self.array = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the block (owner only; call after close on workers)."""
        if not self._owner:
            raise ExecutorError("only the creating process may unlink shared memory")
        self._shm.unlink()

    def __enter__(self) -> "SharedImage":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            try:
                self.unlink()
            except FileNotFoundError:  # already unlinked
                pass


# -- per-worker binding -------------------------------------------------------
#
# The binding is *thread-local first*: several engine runs may execute
# concurrently in one process (the detection service's worker pool), and
# a single process-wide slot would let run B's image clobber run A's
# mid-flight.  Each dispatching thread binds its own image; serial
# executors run tasks on that same thread, thread pools re-install the
# submitting thread's binding around each task
# (:func:`call_with_worker_image`), and process-pool workers are
# single-threaded so their initializer's binding is theirs alone.  A
# process-global fallback keeps custom caller-owned executors (which
# read from unbound threads) working as before.
_tls = threading.local()
_process_image: Optional[np.ndarray] = None
_worker_shm: Optional[SharedImage] = None


def set_worker_image(pixels: np.ndarray) -> None:
    """Install the image array used by partition tasks dispatched from
    this thread (and as the process-wide fallback).

    Serial executors call this in the master process; process pools call
    it via :func:`worker_initializer` in each worker.
    """
    global _process_image
    _tls.image = pixels
    _process_image = pixels


def current_worker_image() -> Optional[np.ndarray]:
    """This thread's bound image, falling back to the process slot;
    ``None`` when nothing is installed."""
    image = getattr(_tls, "image", None)
    return image if image is not None else _process_image


def get_worker_image() -> np.ndarray:
    """The image array installed for this thread's partition tasks."""
    image = current_worker_image()
    if image is None:
        raise ExecutorError(
            "no worker image installed; call set_worker_image() or run tasks "
            "through an executor configured with worker_initializer"
        )
    return image


def clear_worker_image() -> None:
    """Drop this thread's binding (the process fallback is untouched).

    Long-lived dispatcher threads (the detection service's engine pool)
    call this after each run so a finished job's image is not pinned in
    thread-local storage for the thread's lifetime.
    """
    _tls.image = None


def call_with_worker_image(
    pixels: Optional[np.ndarray], fn: Callable[[Any], Any], task: Any
) -> Any:
    """Run ``fn(task)`` with *pixels* as this thread's bound image.

    The thread-pool trampoline: :class:`~repro.parallel.executor.ThreadExecutor`
    snapshots the submitting thread's binding and wraps every task with
    this, so pool threads see the image of the run that submitted the
    task — not whichever run last touched the process-wide slot.
    """
    if pixels is not None:
        _tls.image = pixels
    return fn(task)


def worker_initializer(shm_name: str, shape: Tuple[int, int]) -> None:
    """Process-pool initializer: attach the shared image once per worker."""
    global _worker_shm
    _worker_shm = SharedImage.attach(shm_name, shape)
    set_worker_image(_worker_shm.array)


def use_shared_image(shm_name: str, shape: Tuple[int, int]) -> None:
    """Install the named shared block as this process's worker image,
    attaching only when the name changed since the last call.

    This is the worker half of batch pool reuse
    (:class:`repro.engine.executors.SwitchingProcessExecutor`): one pool
    survives a whole multi-image batch, and each task message names the
    block its image lives in.  Consecutive tasks against the same image
    — the common case, since batches dispatch image by image — pay one
    attach per worker per image, not per task.
    """
    global _worker_shm
    if _worker_shm is not None:
        if _worker_shm.name == shm_name:
            set_worker_image(_worker_shm.array)
            return
        _worker_shm.close()
    _worker_shm = SharedImage.attach(shm_name, shape)
    set_worker_image(_worker_shm.array)
