"""Deterministic timing simulation of periodic-partitioned MCMC runs.

This is the substitution for the paper's hardware study (DESIGN.md §2):
given a machine profile, a sequence of cycle specifications (how many
global iterations, how the local iterations were allocated across
partitions of which feature counts), the simulator computes the wall
clock a run would take on that machine:

* a global phase is strictly sequential:
  ``n_g · τ(total features)``;
* a local phase schedules the per-partition chunks onto the machine's
  cores with LPT and costs the makespan, each chunk priced at the
  *partition's own* feature count (small partitions iterate faster —
  the Table I effect);
* each cycle pays ``phase_overhead`` for splitting, distributing and
  merging state.

All quantities are deterministic given the cycle specs; benchmarks draw
the specs from real grid randomisation + allocation so the simulated
curves inherit the true variability of partition sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.parallel.machines import MachineProfile
from repro.parallel.scheduler import makespan

__all__ = [
    "CycleSpec",
    "CycleTiming",
    "SimResult",
    "iteration_time",
    "simulate_cycle",
    "simulate_run",
    "simulate_sequential",
]


@dataclass(frozen=True)
class CycleSpec:
    """One global↔local cycle of a periodic run.

    Attributes
    ----------
    global_iters:
        Iterations of the sequential global phase.
    local_allocs:
        Iterations allocated to each partition for the local phase.
    features_per_partition:
        Modifiable-feature counts per partition (prices the per-
        iteration cost of each chunk).
    total_features:
        Model size during the global phase.
    """

    global_iters: int
    local_allocs: Sequence[int]
    features_per_partition: Sequence[int]
    total_features: int

    def __post_init__(self) -> None:
        if self.global_iters < 0 or self.total_features < 0:
            raise ConfigurationError("cycle counts must be non-negative")
        if len(self.local_allocs) != len(self.features_per_partition):
            raise ConfigurationError(
                f"{len(self.local_allocs)} allocations for "
                f"{len(self.features_per_partition)} partitions"
            )
        if any(a < 0 for a in self.local_allocs):
            raise ConfigurationError("allocations must be non-negative")
        if any(f < 0 for f in self.features_per_partition):
            raise ConfigurationError("feature counts must be non-negative")

    @property
    def local_iters(self) -> int:
        return int(sum(self.local_allocs))


@dataclass(frozen=True)
class CycleTiming:
    """Simulated wall clock of one cycle, by component."""

    global_seconds: float
    local_seconds: float
    overhead_seconds: float

    @property
    def total(self) -> float:
        return self.global_seconds + self.local_seconds + self.overhead_seconds


@dataclass(frozen=True)
class SimResult:
    """Aggregate of a simulated run."""

    total_seconds: float
    global_seconds: float
    local_seconds: float
    overhead_seconds: float
    cycles: int
    iterations: int

    def fraction_of(self, sequential_seconds: float) -> float:
        """Runtime as a fraction of a sequential baseline."""
        if sequential_seconds <= 0:
            raise ConfigurationError("sequential baseline must be positive")
        return self.total_seconds / sequential_seconds


def iteration_time(profile: MachineProfile, n_features: int) -> float:
    """Convenience alias for :meth:`MachineProfile.iteration_time`."""
    return profile.iteration_time(n_features)


def simulate_cycle(profile: MachineProfile, cycle: CycleSpec) -> CycleTiming:
    """Wall clock of one cycle on *profile* (see module docstring)."""
    g = cycle.global_iters * profile.iteration_time(cycle.total_features)
    chunk_costs = [
        alloc * profile.iteration_time(nf)
        for alloc, nf in zip(cycle.local_allocs, cycle.features_per_partition)
        if alloc > 0
    ]
    l = makespan(chunk_costs, profile.cores) if chunk_costs else 0.0
    return CycleTiming(global_seconds=g, local_seconds=l,
                       overhead_seconds=profile.phase_overhead)


def simulate_run(profile: MachineProfile, cycles: Iterable[CycleSpec]) -> SimResult:
    """Simulate a full periodic run as the sum of its cycles."""
    tg = tl = to = 0.0
    n_cycles = 0
    iters = 0
    for cycle in cycles:
        t = simulate_cycle(profile, cycle)
        tg += t.global_seconds
        tl += t.local_seconds
        to += t.overhead_seconds
        n_cycles += 1
        iters += cycle.global_iters + cycle.local_iters
    return SimResult(
        total_seconds=tg + tl + to,
        global_seconds=tg,
        local_seconds=tl,
        overhead_seconds=to,
        cycles=n_cycles,
        iterations=iters,
    )


def simulate_sequential(
    profile: MachineProfile, iterations: int, n_features: int
) -> float:
    """Wall clock of the conventional sequential chain on *profile*."""
    if iterations < 0:
        raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
    return iterations * profile.iteration_time(n_features)
