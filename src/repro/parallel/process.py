"""Persistent process-pool executor.

The pool is created once and reused across every phase of a periodic
run — fork/spawn latency is paid once, not per cycle.  Task functions
must be module-level (picklable); the image travels via
:mod:`repro.parallel.sharedmem`, not in the task messages.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future
from concurrent.futures import ProcessPoolExecutor as _PPE
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ExecutorError
from repro.parallel.executor import Executor

__all__ = ["ProcessExecutor"]


class ProcessExecutor(Executor):
    """A persistent pool of worker processes.

    Parameters
    ----------
    n_workers:
        Pool size.
    initializer, initargs:
        Run once in each worker at start-up — pass
        :func:`repro.parallel.sharedmem.worker_initializer` with the
        shared image's ``attach_args()`` to give workers pixel access.
    start_method:
        ``"fork"`` (default on Linux; cheapest) or ``"spawn"``.
    """

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        start_method: str = "fork",
    ) -> None:
        if n_workers < 1:
            raise ExecutorError(f"n_workers must be >= 1, got {n_workers}")
        try:
            ctx = multiprocessing.get_context(start_method)
        except ValueError as exc:
            raise ExecutorError(f"unknown start method {start_method!r}") from exc
        self._n = n_workers
        self._pool = _PPE(
            max_workers=n_workers,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        )
        self._alive = True

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        if not self._alive:
            raise ExecutorError("executor already shut down")
        try:
            return list(self._pool.map(fn, tasks, chunksize=1))
        except BrokenProcessPool_or_base() as exc:  # pragma: no cover
            raise ExecutorError(f"worker pool failed: {exc}") from exc

    def submit(self, fn: Callable[[Any], Any], task: Any) -> "Future":
        if not self._alive:
            raise ExecutorError("executor already shut down")
        return self._pool.submit(fn, task)

    @property
    def parallelism(self) -> int:
        return self._n

    def shutdown(self) -> None:
        if self._alive:
            self._pool.shutdown(wait=True)
            self._alive = False


def BrokenProcessPool_or_base():
    """The BrokenProcessPool class (import-guarded for older Pythons)."""
    try:
        from concurrent.futures.process import BrokenProcessPool

        return BrokenProcessPool
    except ImportError:  # pragma: no cover
        return RuntimeError
