"""Parallel execution substrate.

Two complementary halves:

* **Real execution** — :mod:`repro.parallel.executor` /
  :mod:`repro.parallel.process` / :mod:`repro.parallel.sharedmem`: a
  small executor abstraction (serial / threads / persistent process
  pool with the image in shared memory) used by the periodic sampler
  and the partitioning pipelines to actually run partition work
  concurrently on the host.  CPython's GIL makes *processes* the unit
  of parallelism for this workload; images are placed in
  ``multiprocessing.shared_memory`` so workers never re-pickle pixels
  (cf. the mpi4py guidance: ship arrays, not objects).
* **Simulated execution** — :mod:`repro.parallel.simcluster` /
  :mod:`repro.parallel.machines`: a deterministic timing model of the
  paper's three 2010-era test machines (Q6600, Pentium-D, dual-Xeon),
  used to reproduce the architecture study without the hardware (see
  DESIGN.md §2).
"""

from repro.parallel.executor import Executor, SerialExecutor, ThreadExecutor
from repro.parallel.process import ProcessExecutor
from repro.parallel.sharedmem import SharedImage, get_worker_image, set_worker_image
from repro.parallel.scheduler import lpt_schedule, makespan
from repro.parallel.machines import MachineProfile, Q6600, PENTIUM_D, XEON_2P, host_profile
from repro.parallel.simcluster import (
    CycleSpec,
    CycleTiming,
    SimResult,
    iteration_time,
    simulate_cycle,
    simulate_run,
    simulate_sequential,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedImage",
    "get_worker_image",
    "set_worker_image",
    "lpt_schedule",
    "makespan",
    "MachineProfile",
    "Q6600",
    "PENTIUM_D",
    "XEON_2P",
    "host_profile",
    "CycleSpec",
    "CycleTiming",
    "SimResult",
    "iteration_time",
    "simulate_cycle",
    "simulate_run",
    "simulate_sequential",
]
