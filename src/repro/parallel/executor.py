"""Executor abstraction: where partition tasks actually run.

The periodic sampler and the partitioning pipelines are written against
this tiny interface so the same algorithm code runs serially (tests,
debugging), on threads (useful when the heavy lifting is in numpy,
which releases the GIL for large array operations) or on a persistent
process pool (:mod:`repro.parallel.process` — true parallelism for
Python-level work).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor as _TPE
from typing import Any, Callable, List, Sequence

from repro.errors import ExecutorError

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor"]


class Executor(ABC):
    """Maps a function over tasks, possibly in parallel.

    Results are returned in task order regardless of completion order —
    the periodic sampler relies on this to reassociate partition results
    with partition contexts.
    """

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply *fn* to every task; return results in task order."""

    @property
    @abstractmethod
    def parallelism(self) -> int:
        """How many tasks can make progress simultaneously."""

    def shutdown(self) -> None:
        """Release resources; the executor is unusable afterwards."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Runs every task inline, in order.  The reference semantics."""

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        return [fn(t) for t in tasks]

    @property
    def parallelism(self) -> int:
        return 1


class ThreadExecutor(Executor):
    """A thread pool.

    Threads only help when the task body spends its time in GIL-
    releasing code (large numpy kernels, I/O).  For the Python-level
    MCMC inner loop prefer :class:`~repro.parallel.process.ProcessExecutor`.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ExecutorError(f"n_workers must be >= 1, got {n_workers}")
        self._n = n_workers
        self._pool = _TPE(max_workers=n_workers)
        self._alive = True

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        if not self._alive:
            raise ExecutorError("executor already shut down")
        return list(self._pool.map(fn, tasks))

    @property
    def parallelism(self) -> int:
        return self._n

    def shutdown(self) -> None:
        if self._alive:
            self._pool.shutdown(wait=True)
            self._alive = False
