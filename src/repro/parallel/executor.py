"""Executor abstraction: where partition tasks actually run.

The periodic sampler and the partitioning pipelines are written against
this tiny interface so the same algorithm code runs serially (tests,
debugging), on threads (useful when the heavy lifting is in numpy,
which releases the GIL for large array operations) or on a persistent
process pool (:mod:`repro.parallel.process` — true parallelism for
Python-level work).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future
from concurrent.futures import ThreadPoolExecutor as _TPE
from typing import Any, Callable, List, Sequence

from repro.errors import ExecutorError

__all__ = ["Executor", "SerialExecutor", "ThreadExecutor"]


class Executor(ABC):
    """Maps a function over tasks, possibly in parallel.

    Results are returned in task order regardless of completion order —
    the periodic sampler relies on this to reassociate partition results
    with partition contexts.
    """

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply *fn* to every task; return results in task order."""

    def submit(self, fn: Callable[[Any], Any], task: Any) -> "Future":
        """Dispatch one task, returning a :class:`~concurrent.futures.Future`.

        The streaming path (:class:`repro.engine.executors.AsyncExecutor`)
        uses this to overlap task planning with task execution.  The
        base implementation runs the task inline and returns an
        already-completed future — correct (and the reference semantics)
        for executors without background workers; pool-backed executors
        override it to dispatch asynchronously.
        """
        future: "Future" = Future()
        try:
            future.set_result(self.map(fn, [task])[0])
        except BaseException as exc:  # propagate through the future contract
            future.set_exception(exc)
        return future

    @property
    @abstractmethod
    def parallelism(self) -> int:
        """How many tasks can make progress simultaneously."""

    def shutdown(self) -> None:
        """Release resources; the executor is unusable afterwards."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Runs every task inline, in order.  The reference semantics."""

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        return [fn(t) for t in tasks]

    @property
    def parallelism(self) -> int:
        return 1


class ThreadExecutor(Executor):
    """A thread pool.

    Threads only help when the task body spends its time in GIL-
    releasing code (large numpy kernels, I/O).  For the Python-level
    MCMC inner loop prefer :class:`~repro.parallel.process.ProcessExecutor`.

    Tasks run under the *submitting* thread's worker-image binding
    (:func:`repro.parallel.sharedmem.call_with_worker_image`), so
    concurrent engine runs in one process each see their own image.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ExecutorError(f"n_workers must be >= 1, got {n_workers}")
        self._n = n_workers
        self._pool = _TPE(max_workers=n_workers)
        self._alive = True

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        from repro.parallel import sharedmem

        if not self._alive:
            raise ExecutorError("executor already shut down")
        pixels = sharedmem.current_worker_image()
        return list(self._pool.map(
            lambda task: sharedmem.call_with_worker_image(pixels, fn, task),
            tasks,
        ))

    def submit(self, fn: Callable[[Any], Any], task: Any) -> "Future":
        from repro.parallel import sharedmem

        if not self._alive:
            raise ExecutorError("executor already shut down")
        return self._pool.submit(
            sharedmem.call_with_worker_image,
            sharedmem.current_worker_image(), fn, task,
        )

    @property
    def parallelism(self) -> int:
        return self._n

    def shutdown(self) -> None:
        if self._alive:
            self._pool.shutdown(wait=True)
            self._alive = False
