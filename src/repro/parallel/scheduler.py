"""Task scheduling for unequal partitions.

§VI: "The processor dead-time that results can be reclaimed through the
use of a task scheduler, allowing more partitions than there are
available processors to be employed."  We use the classic Longest
Processing Time (LPT) greedy rule — sort tasks by decreasing cost,
always give the next task to the least-loaded processor — which is a
4/3-approximation to the optimal makespan and is what "load balancing
should be used" amounts to in the paper's two-processor discussion
(§VII, §IX).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ExecutorError

__all__ = ["lpt_schedule", "makespan"]


def lpt_schedule(
    costs: Sequence[float], n_workers: int
) -> Tuple[List[List[int]], float]:
    """Assign tasks to workers by the LPT rule.

    Parameters
    ----------
    costs:
        Per-task processing times (>= 0).
    n_workers:
        Number of processors.

    Returns
    -------
    ``(assignment, makespan)`` where ``assignment[w]`` lists the task
    indices given to worker *w* and *makespan* is the completion time of
    the busiest worker.
    """
    if n_workers < 1:
        raise ExecutorError(f"n_workers must be >= 1, got {n_workers}")
    c = np.asarray(list(costs), dtype=float)
    if c.ndim != 1:
        raise ExecutorError("costs must be a 1-D sequence")
    if c.size and (np.any(c < 0) or not np.all(np.isfinite(c))):
        raise ExecutorError("costs must be finite and non-negative")

    assignment: List[List[int]] = [[] for _ in range(n_workers)]
    loads = np.zeros(n_workers, dtype=float)
    # Decreasing cost, ties broken by index for determinism.
    order = np.lexsort((np.arange(c.size), -c))
    for t in order:
        w = int(np.argmin(loads))
        assignment[w].append(int(t))
        loads[w] += c[t]
    return assignment, float(loads.max())


def makespan(costs: Sequence[float], n_workers: int) -> float:
    """LPT makespan only (the quantity the timing simulator needs)."""
    _, ms = lpt_schedule(costs, n_workers)
    return ms
