"""Machine profiles for the simulated architecture study.

The paper evaluates on three 2010-era machines; we cannot, so each is
modelled by the quantities that actually drive its results (§VII):

* ``cores`` — how many partition tasks can run concurrently;
* ``tau_base`` / ``tau_per_feature`` — per-iteration cost model
  ``τ(n) = tau_base + tau_per_feature · n``.  Iteration time grows with
  the number of features in scope (Table I measures 4×10⁻⁵ s/iter on
  the 48-object image but ~2×10⁻⁵ in a 4–6 object partition; the
  intro notes cost "can increase ... with the number [of] artifacts").
  This is why partitioned local phases run *faster per iteration* than
  the sequential chain, and why measured reductions can exceed the
  eq. (2) prediction's naive reading.
* ``phase_overhead`` — seconds per global↔local cycle spent
  duplicating, distributing and re-merging partition state.  This is
  the differentiator between the three machines: the single-die
  Pentium-D has "the best inter-thread communication times", the
  dual-socket Xeon the worst, the two-die Q6600 in between (§VII).

Overheads are calibrated so the simulator lands near the paper's
measured reductions (38 % / 29 % / 23 %) *and* reproduces Fig. 2's
crossover (periodic beats sequential only once global phases exceed a
few ms) — one constant set satisfies both, which is evidence the model
captures the right mechanism.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["MachineProfile", "Q6600", "PENTIUM_D", "XEON_2P", "host_profile"]


@dataclass(frozen=True)
class MachineProfile:
    """Timing model of one execution platform."""

    name: str
    cores: int
    tau_base: float  #: seconds/iteration independent of model size
    tau_per_feature: float  #: additional seconds/iteration per feature in scope
    phase_overhead: float  #: seconds per global↔local cycle (split+merge+sync)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.tau_base < 0 or self.tau_per_feature < 0 or self.phase_overhead < 0:
            raise ConfigurationError("timing constants must be non-negative")
        if self.tau_base == 0 and self.tau_per_feature == 0:
            raise ConfigurationError("iteration cost model cannot be all zero")

    def iteration_time(self, n_features: int) -> float:
        """τ(n): seconds per MCMC iteration with *n* features in scope."""
        if n_features < 0:
            raise ConfigurationError(f"n_features must be >= 0, got {n_features}")
        return self.tau_base + self.tau_per_feature * n_features

    def scaled(self, factor: float) -> "MachineProfile":
        """A uniformly faster/slower variant (clock scaling)."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=f"{self.name}×{factor:g}",
            tau_base=self.tau_base * factor,
            tau_per_feature=self.tau_per_feature * factor,
            phase_overhead=self.phase_overhead * factor,
        )


# Reference workload: the Fig. 2 image (150 features) runs at
# τ(150) ≈ 0.174 ms/iteration → 500 000 iterations ≈ 87 s sequential,
# matching the magnitude of the paper's Fig. 2 y-axis.
_TAU_150 = 0.174e-3
_BASE_FRACTION = 0.05  # fraction of τ(150) independent of feature count

_TAU_BASE = _BASE_FRACTION * _TAU_150
_TAU_FEAT = (1.0 - _BASE_FRACTION) * _TAU_150 / 150.0

#: Intel Core 2 Quad Q6600 — four cores on two dies; moderate
#: cross-die communication cost.
Q6600 = MachineProfile(
    name="Q6600", cores=4, tau_base=_TAU_BASE, tau_per_feature=_TAU_FEAT,
    phase_overhead=5.0e-3,
)

#: Intel Pentium-D — two cores, one die: "the best inter-thread
#: communication times" (§VII).
PENTIUM_D = MachineProfile(
    name="Pentium-D", cores=2, tau_base=_TAU_BASE * 1.25,
    tau_per_feature=_TAU_FEAT * 1.25, phase_overhead=1.0e-3,
)

#: Dual-processor Xeon — two cores on separate sockets: "greater
#: communication times between threads" (§VII).
XEON_2P = MachineProfile(
    name="Xeon-2P", cores=2, tau_base=_TAU_BASE * 1.1,
    tau_per_feature=_TAU_FEAT * 1.1, phase_overhead=8.0e-3,
)


def host_profile(
    tau_base: float = _TAU_BASE,
    tau_per_feature: float = _TAU_FEAT,
    phase_overhead: float = 2.0e-3,
) -> MachineProfile:
    """A profile with the current host's core count (timing constants
    default to the reference model; calibrate with
    :mod:`repro.bench.calibration` for live comparisons)."""
    return MachineProfile(
        name="host",
        cores=os.cpu_count() or 1,
        tau_base=tau_base,
        tau_per_feature=tau_per_feature,
        phase_overhead=phase_overhead,
    )
