"""Circle–circle overlap computations.

The MCMC prior penalises overlapping artifacts ("the degree to which
overlap is tolerated", §III), which requires the exact lens area of two
intersecting discs.  Both a scalar form and a vectorised form (one circle
against arrays of circles — the inner loop of the overlap prior) are
provided.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "circle_circle_overlap_area",
    "circle_overlap_areas",
    "circles_intersect",
]


def circle_circle_overlap_area(
    x0: float, y0: float, r0: float, x1: float, y1: float, r1: float
) -> float:
    """Exact intersection area of two discs.

    Uses the standard circular-lens formula; handles the containment and
    disjoint cases explicitly for numerical robustness.
    """
    d = math.hypot(x1 - x0, y1 - y0)
    if d >= r0 + r1:
        return 0.0
    rmin, rmax = (r0, r1) if r0 <= r1 else (r1, r0)
    if d <= rmax - rmin:
        return math.pi * rmin * rmin
    # Lens area: sum of the two circular segments.
    d2, r02, r12 = d * d, r0 * r0, r1 * r1
    den0, den1 = 2.0 * d * r0, 2.0 * d * r1
    if den0 == 0.0 or den1 == 0.0:
        # Subnormal d can underflow 2·d·r to exactly 0 while the
        # containment test above still sees d > rmax − rmin; the discs
        # are concentric to machine precision.
        return math.pi * rmin * rmin
    alpha = math.acos(_clamp((d2 + r02 - r12) / den0))
    beta = math.acos(_clamp((d2 + r12 - r02) / den1))
    return (
        r02 * (alpha - math.sin(2.0 * alpha) / 2.0)
        + r12 * (beta - math.sin(2.0 * beta) / 2.0)
    )


def circle_overlap_areas(
    x: float,
    y: float,
    r: float,
    xs: np.ndarray,
    ys: np.ndarray,
    rs: np.ndarray,
) -> np.ndarray:
    """Vectorised lens areas of one disc against arrays of discs.

    Returns an array the same length as *xs*; entries are 0 for disjoint
    pairs and ``pi * rmin^2`` for full containment.
    """
    if not (isinstance(xs, np.ndarray) and xs.dtype == np.float64):
        xs = np.asarray(xs, dtype=float)
    if not (isinstance(ys, np.ndarray) and ys.dtype == np.float64):
        ys = np.asarray(ys, dtype=float)
    if not (isinstance(rs, np.ndarray) and rs.dtype == np.float64):
        rs = np.asarray(rs, dtype=float)
    d = np.hypot(xs - x, ys - y)
    out = np.zeros_like(d)

    rmin = np.minimum(r, rs)
    rmax = np.maximum(r, rs)

    contained = d <= (rmax - rmin)
    if contained.any():
        out[contained] = math.pi * rmin[contained] ** 2

    partial = (~contained) & (d < r + rs)
    if np.any(partial):
        dp = d[partial]
        rp = rs[partial]
        d2 = dp * dp
        r02 = r * r
        r12 = rp * rp
        den0 = 2.0 * dp * r
        den1 = 2.0 * dp * rp
        # Subnormal separations underflow 2·d·r to exactly 0 (concentric
        # to machine precision) — substitute a safe denominator and patch
        # in the contained-disc area afterwards.
        degenerate = (den0 == 0.0) | (den1 == 0.0)
        if degenerate.any():
            den0 = np.where(degenerate, 1.0, den0)
            den1 = np.where(degenerate, 1.0, den1)
        alpha = np.arccos(np.clip((d2 + r02 - r12) / den0, -1.0, 1.0))
        beta = np.arccos(np.clip((d2 + r12 - r02) / den1, -1.0, 1.0))
        vals = r02 * (alpha - np.sin(2.0 * alpha) / 2.0) + r12 * (
            beta - np.sin(2.0 * beta) / 2.0
        )
        if degenerate.any():
            vals = np.where(degenerate, math.pi * np.minimum(r, rp) ** 2, vals)
        out[partial] = vals
    return out


def circles_intersect(
    x0: float, y0: float, r0: float, x1: float, y1: float, r1: float
) -> bool:
    """True iff the two discs share at least one point."""
    dx, dy = x1 - x0, y1 - y0
    rsum = r0 + r1
    return dx * dx + dy * dy <= rsum * rsum


def _clamp(v: float) -> float:
    return -1.0 if v < -1.0 else (1.0 if v > 1.0 else v)
