"""Axis-aligned rectangles.

Rectangles use half-open extents ``[x0, x1) × [y0, y1)`` in continuous
image coordinates (x = column axis, y = row axis, origin at the top-left
pixel corner).  The half-open convention means a set of grid partitions
tiles an image with neither gaps nor double-covered points — an invariant
the partitioning property tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import GeometryError

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1) × [y0, y1)``.

    Construction validates ``x1 > x0`` and ``y1 > y0``; degenerate or
    inverted rectangles raise :class:`~repro.errors.GeometryError`.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise GeometryError(
                f"degenerate rect: ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    # -- basic measures ---------------------------------------------------
    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    # -- containment / intersection ---------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Point membership with half-open semantics."""
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def contains_circle(self, x: float, y: float, r: float, margin: float = 0.0) -> bool:
        """True iff the disc of radius *r* at (x, y), inflated by *margin*,
        lies entirely inside this rectangle.

        This is the predicate the paper uses to decide whether a feature is
        *modifiable* within a partition: its disc plus the local-move reach
        must not touch the partition boundary.
        """
        reach = r + margin
        return (
            self.x0 <= x - reach
            and x + reach <= self.x1
            and self.y0 <= y - reach
            and y + reach <= self.y1
        )

    def intersects_circle(self, x: float, y: float, r: float) -> bool:
        """True iff the disc intersects the (closed) rectangle."""
        cx = min(max(x, self.x0), self.x1)
        cy = min(max(y, self.y0), self.y1)
        dx, dy = x - cx, y - cy
        return dx * dx + dy * dy <= r * r

    def intersects(self, other: "Rect") -> bool:
        """True iff the half-open rectangles share interior points."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` if disjoint."""
        x0, y0 = max(self.x0, other.x0), max(self.y0, other.y0)
        x1, y1 = min(self.x1, other.x1), min(self.y1, other.y1)
        if x1 > x0 and y1 > y0:
            return Rect(x0, y0, x1, y1)
        return None

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    # -- derived rectangles -------------------------------------------------
    def shrink(self, margin: float) -> Optional["Rect"]:
        """Rect inset by *margin* on all sides, or ``None`` if it vanishes.

        ``rect.shrink(m)`` is the region in which a point-feature with reach
        *m* may live while staying modifiable — the ``(x - y)^2`` effective
        area discussed in §VI of the paper.
        """
        x0, y0 = self.x0 + margin, self.y0 + margin
        x1, y1 = self.x1 - margin, self.y1 - margin
        if x1 > x0 and y1 > y0:
            return Rect(x0, y0, x1, y1)
        return None

    def expand(self, margin: float) -> "Rect":
        """Rect grown by *margin* on all sides (used by blind partitioning)."""
        if margin < 0:
            raise GeometryError(f"expand margin must be >= 0, got {margin}")
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def clip_to(self, bounds: "Rect") -> Optional["Rect"]:
        """Alias of :meth:`intersection`, reads better at call sites."""
        return self.intersection(bounds)

    def split_at(self, x: float, y: float) -> List["Rect"]:
        """Split into up to four rectangles at interior point (x, y).

        This implements the paper's Fig. 2 partitioning: "four rectangular
        partitions using a single coordinate where all partitions meet".
        Coordinates on or outside the boundary yield fewer rectangles.
        """
        xs = [self.x0] + ([x] if self.x0 < x < self.x1 else []) + [self.x1]
        ys = [self.y0] + ([y] if self.y0 < y < self.y1 else []) + [self.y1]
        out: List[Rect] = []
        for i in range(len(xs) - 1):
            for j in range(len(ys) - 1):
                out.append(Rect(xs[i], ys[j], xs[i + 1], ys[j + 1]))
        return out

    # -- pixel-space helpers -------------------------------------------------
    def pixel_slices(self) -> Tuple[slice, slice]:
        """(row_slice, col_slice) of pixels whose centers lie in the rect.

        Pixel (i, j) has its center at (j + 0.5, i + 0.5).
        """
        import math

        r0 = max(0, int(math.ceil(self.y0 - 0.5)))
        r1 = max(r0, int(math.ceil(self.y1 - 0.5)))
        c0 = max(0, int(math.ceil(self.x0 - 0.5)))
        c1 = max(c0, int(math.ceil(self.x1 - 0.5)))
        return slice(r0, r1), slice(c0, c1)

    def __iter__(self) -> Iterator[float]:
        yield self.x0
        yield self.y0
        yield self.x1
        yield self.y1
