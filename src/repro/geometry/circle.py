"""The circle primitive.

A circle is the model's representation of one image artifact (a cell
nucleus / latex bead in the paper's case study): centre ``(x, y)`` and
radius ``r`` in continuous image coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import GeometryError
from repro.geometry.rect import Rect

__all__ = ["Circle"]


@dataclass(frozen=True)
class Circle:
    """An immutable circle with centre (x, y) and radius r > 0."""

    x: float
    y: float
    r: float

    def __post_init__(self) -> None:
        if not (self.r > 0 and math.isfinite(self.r)):
            raise GeometryError(f"circle radius must be positive, got {self.r}")
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise GeometryError(f"circle centre must be finite, got ({self.x}, {self.y})")

    @property
    def area(self) -> float:
        return math.pi * self.r * self.r

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def bounding_rect(self, margin: float = 0.0) -> Rect:
        """Axis-aligned bounding rectangle, optionally inflated by *margin*."""
        reach = self.r + margin
        return Rect(self.x - reach, self.y - reach, self.x + reach, self.y + reach)

    def distance_to(self, other: "Circle") -> float:
        """Centre-to-centre Euclidean distance."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def contains_point(self, px: float, py: float) -> bool:
        dx, dy = px - self.x, py - self.y
        return dx * dx + dy * dy <= self.r * self.r

    def translated(self, dx: float, dy: float) -> "Circle":
        """A copy moved by (dx, dy)."""
        return Circle(self.x + dx, self.y + dy, self.r)

    def resized(self, new_r: float) -> "Circle":
        """A copy with radius *new_r* (validated positive)."""
        return Circle(self.x, self.y, new_r)

    def merged_with(self, other: "Circle") -> "Circle":
        """The paper's merge heuristic: average centre and radius.

        §IX: duplicated boundary artifacts in blind partitioning are
        "replaced with a bead with centerpoint and radii that are the
        average of the original bead[s]".
        """
        return Circle(
            0.5 * (self.x + other.x),
            0.5 * (self.y + other.y),
            0.5 * (self.r + other.r),
        )
