"""Geometric primitives: circles, rectangles, overlap areas, spatial index.

Everything in the MCMC model is expressed over axis-aligned rectangles
(image bounds, partitions) and circles (the artifacts being detected —
cell nuclei / latex beads in the paper's case study).
"""

from repro.geometry.rect import Rect
from repro.geometry.circle import Circle
from repro.geometry.overlap import (
    circle_circle_overlap_area,
    circle_overlap_areas,
    circles_intersect,
)
from repro.geometry.spatial_hash import SpatialHash

__all__ = [
    "Rect",
    "Circle",
    "circle_circle_overlap_area",
    "circle_overlap_areas",
    "circles_intersect",
    "SpatialHash",
]
