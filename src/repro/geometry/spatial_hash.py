"""A uniform-grid spatial hash for dynamic circle sets.

The overlap prior and the merge/split move generators repeatedly ask
"which circles lie within distance *d* of this point?".  With up to a
few hundred artifacts a linear scan is affordable, but the paper's
motivation is *large* images ("the time per iteration can increase
exponentially with the number [of] artifacts"), so neighbour queries are
the scaling bottleneck we must not ignore.  A uniform bucket grid gives
O(1) expected insert/remove/query for the near-uniform artifact layouts
of the case study.

The hash stores integer item ids (row indices into the configuration's
structure-of-arrays storage); geometry is passed in explicitly so the
hash never holds stale coordinates.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import GeometryError

__all__ = ["SpatialHash"]


class SpatialHash:
    """Uniform-grid spatial index over point-like items.

    Parameters
    ----------
    cell_size:
        Bucket edge length.  Pick roughly the interaction diameter
        (e.g. ``2 * (r_max + interaction_margin)``) so queries touch a
        3×3 neighbourhood of buckets.
    """

    def __init__(self, cell_size: float) -> None:
        if not (cell_size > 0 and math.isfinite(cell_size)):
            raise GeometryError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._buckets: Dict[Tuple[int, int], Set[int]] = {}
        self._positions: Dict[int, Tuple[float, float]] = {}

    # -- bucket arithmetic -------------------------------------------------
    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    # -- mutation ------------------------------------------------------------
    def insert(self, item: int, x: float, y: float) -> None:
        """Add *item* at (x, y).  Re-inserting an existing id is an error."""
        if item in self._positions:
            raise GeometryError(f"item {item} already in spatial hash")
        key = self._key(x, y)
        self._buckets.setdefault(key, set()).add(item)
        self._positions[item] = (x, y)

    def remove(self, item: int) -> None:
        """Remove *item*; unknown ids are an error."""
        try:
            x, y = self._positions.pop(item)
        except KeyError:
            raise GeometryError(f"item {item} not in spatial hash") from None
        key = self._key(x, y)
        bucket = self._buckets[key]
        bucket.discard(item)
        if not bucket:
            del self._buckets[key]

    def move(self, item: int, x: float, y: float) -> None:
        """Update *item*'s position (bucket transfer only when needed)."""
        try:
            ox, oy = self._positions[item]
        except KeyError:
            raise GeometryError(f"item {item} not in spatial hash") from None
        old_key = self._key(ox, oy)
        new_key = self._key(x, y)
        if old_key != new_key:
            bucket = self._buckets[old_key]
            bucket.discard(item)
            if not bucket:
                del self._buckets[old_key]
            self._buckets.setdefault(new_key, set()).add(item)
        self._positions[item] = (x, y)

    def clear(self) -> None:
        self._buckets.clear()
        self._positions.clear()

    # -- queries ---------------------------------------------------------------
    def query_disc(self, x: float, y: float, radius: float) -> List[int]:
        """Ids of items within Euclidean distance *radius* of (x, y)."""
        if radius < 0:
            raise GeometryError(f"query radius must be >= 0, got {radius}")
        kx0, ky0 = self._key(x - radius, y - radius)
        kx1, ky1 = self._key(x + radius, y + radius)
        r2 = radius * radius
        out: List[int] = []
        for kx in range(kx0, kx1 + 1):
            for ky in range(ky0, ky1 + 1):
                bucket = self._buckets.get((kx, ky))
                if not bucket:
                    continue
                for item in bucket:
                    px, py = self._positions[item]
                    dx, dy = px - x, py - y
                    if dx * dx + dy * dy <= r2:
                        out.append(item)
        return out

    def query_rect(self, x0: float, y0: float, x1: float, y1: float) -> List[int]:
        """Ids of items with position in the half-open rect [x0,x1)×[y0,y1)."""
        kx0, ky0 = self._key(x0, y0)
        kx1, ky1 = self._key(x1, y1)
        out: List[int] = []
        for kx in range(kx0, kx1 + 1):
            for ky in range(ky0, ky1 + 1):
                bucket = self._buckets.get((kx, ky))
                if not bucket:
                    continue
                for item in bucket:
                    px, py = self._positions[item]
                    if x0 <= px < x1 and y0 <= py < y1:
                        out.append(item)
        return out

    def nearest_within(self, x: float, y: float, radius: float, exclude: int = -1):
        """The closest item within *radius* of (x, y), or ``None``.

        Used by the merge move generator to find a partner for a randomly
        selected circle.
        """
        best_item = None
        best_d2 = radius * radius
        for item in self.query_disc(x, y, radius):
            if item == exclude:
                continue
            px, py = self._positions[item]
            dx, dy = px - x, py - y
            d2 = dx * dx + dy * dy
            if d2 <= best_d2:
                best_d2 = d2
                best_item = item
        return best_item

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item: int) -> bool:
        return item in self._positions

    def position_of(self, item: int) -> Tuple[float, float]:
        return self._positions[item]

    def items(self) -> Iterable[int]:
        return self._positions.keys()

    def bucket_count(self) -> int:
        """Number of non-empty buckets (for tests / diagnostics)."""
        return len(self._buckets)
