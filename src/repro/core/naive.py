"""Naive partitioning — the broken baseline (§I, §V motivation).

"'Naively' bisecting an image and considering the two equal halves
separately will ... not yield the same results as processing the entire
image at once.  Even in the absence of global properties, artifacts
that intersect with a partition boundary may be found twice ..., be
poorly identified ..., or not be found at all."

We implement it exactly so the benchmark suite can *show* those
anomalies: split into a plain grid with **no overlap**, give each tile
the area-scaled share of the whole-image prior (the incorrect uniform-
density assumption §VIII criticises), run independent chains, and
concatenate without any reconciliation.

.. note::
   The orchestration now lives in the unified engine
   (:mod:`repro.engine`); :func:`run_naive_partitioning` is a
   compatibility shim over the ``"naive"`` strategy, bit-identical to
   the pre-engine behaviour for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.core.subimage import SubImageResult
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.executor import Executor
from repro.utils.rng import SeedLike

__all__ = ["NaiveResult", "run_naive_partitioning"]


@dataclass
class NaiveResult:
    """Outcome of naive partitioning (no reconciliation performed)."""

    tiles: List[Rect]
    sub_results: List[SubImageResult]
    circles: List[Circle] = field(default_factory=list)

    def cut_lines(self):
        """The interior grid lines, for boundary-anomaly accounting:
        list of ('v'|'h', coordinate) pairs."""
        lines = []
        xs = sorted({t.x0 for t in self.tiles} | {t.x1 for t in self.tiles})
        ys = sorted({t.y0 for t in self.tiles} | {t.y1 for t in self.tiles})
        for x in xs[1:-1]:
            lines.append(("v", x))
        for y in ys[1:-1]:
            lines.append(("h", y))
        return lines


def run_naive_partitioning(
    image: Image,
    spec: ModelSpec,
    move_config: MoveConfig,
    iterations_per_tile: int,
    nx: int = 2,
    ny: int = 2,
    executor: Optional[Executor] = None,
    seed: SeedLike = None,
    record_every: int = 50,
) -> NaiveResult:
    """Divide-and-conquer with none of the paper's safeguards.

    Compatibility shim over ``repro.engine.run(strategy="naive")``.
    """
    from repro.engine import DetectionRequest, run

    request = DetectionRequest(
        image=image,
        spec=spec,
        move_config=move_config,
        iterations=iterations_per_tile,
        strategy="naive",
        executor=executor if executor is not None else "serial",
        seed=seed,
        record_every=record_every,
        options={"nx": nx, "ny": ny},
    )
    return run(request).raw
