"""Naive partitioning — the broken baseline (§I, §V motivation).

"'Naively' bisecting an image and considering the two equal halves
separately will ... not yield the same results as processing the entire
image at once.  Even in the absence of global properties, artifacts
that intersect with a partition boundary may be found twice ..., be
poorly identified ..., or not be found at all."

We implement it exactly so the benchmark suite can *show* those
anomalies: split into a plain grid with **no overlap**, give each tile
the area-scaled share of the whole-image prior (the incorrect uniform-
density assumption §VIII criticises), run independent chains, and
concatenate without any reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.core.subimage import SubImageResult, make_subimage_task, run_subimage_task
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.sharedmem import set_worker_image
from repro.partitioning.merge import concat_models
from repro.utils.rng import SeedLike, coerce_stream

__all__ = ["NaiveResult", "run_naive_partitioning"]


@dataclass
class NaiveResult:
    """Outcome of naive partitioning (no reconciliation performed)."""

    tiles: List[Rect]
    sub_results: List[SubImageResult]
    circles: List[Circle] = field(default_factory=list)

    def cut_lines(self):
        """The interior grid lines, for boundary-anomaly accounting:
        list of ('v'|'h', coordinate) pairs."""
        lines = []
        xs = sorted({t.x0 for t in self.tiles} | {t.x1 for t in self.tiles})
        ys = sorted({t.y0 for t in self.tiles} | {t.y1 for t in self.tiles})
        for x in xs[1:-1]:
            lines.append(("v", x))
        for y in ys[1:-1]:
            lines.append(("h", y))
        return lines


def run_naive_partitioning(
    image: Image,
    spec: ModelSpec,
    move_config: MoveConfig,
    iterations_per_tile: int,
    nx: int = 2,
    ny: int = 2,
    executor: Optional[Executor] = None,
    seed: SeedLike = None,
    record_every: int = 50,
) -> NaiveResult:
    """Divide-and-conquer with none of the paper's safeguards."""
    bounds = image.bounds
    xs = [bounds.x0 + bounds.width * i / nx for i in range(nx + 1)]
    ys = [bounds.y0 + bounds.height * j / ny for j in range(ny + 1)]
    tiles = [
        Rect(xs[i], ys[j], xs[i + 1], ys[j + 1])
        for j in range(ny)
        for i in range(nx)
    ]
    stream = coerce_stream(seed)
    set_worker_image(image.pixels)
    exec_ = executor or SerialExecutor()

    tasks = []
    for tile in tiles:
        # The naive prior allocation: whole-image count scaled by area.
        naive_count = spec.expected_count * (tile.area / bounds.area)
        tasks.append(
            make_subimage_task(
                tile,
                spec,
                move_config,
                expected_count=naive_count,
                iterations=iterations_per_tile,
                seed=int(stream.rng.integers(0, 2**63 - 1)),
                record_every=record_every,
            )
        )
    sub_results = exec_.map(run_subimage_task, tasks)
    return NaiveResult(
        tiles=tiles,
        sub_results=sub_results,
        circles=concat_models([r.circles for r in sub_results]),
    )
