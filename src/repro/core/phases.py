"""Global/local phase scheduling (§V).

"If *i* MCMC iterations are to be performed in total in each local move
phase, and Mg moves are 'supposed' to be occurring with probability qg,
then i·qg/(1−qg) iterations must be performed in the global move
phase."  The schedule alternates those two phase lengths so the
long-term move-proposal probabilities equal the configured ones.

The schedule is expressed in *local* iterations per phase because that
is the knob the experimenter sweeps in Fig. 2 (longer phases amortise
the per-cycle overhead; shorter phases keep the chain closer to the
unpartitioned law).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import ConfigurationError

__all__ = ["PhaseSchedule"]


@dataclass(frozen=True)
class PhaseSchedule:
    """Alternating Mg/Ml phase lengths for a given qg.

    Parameters
    ----------
    local_iters:
        Iterations per local phase (the paper's *i*), split across
        partitions by :func:`repro.partitioning.allocation.allocate_iterations`.
    qg:
        Global-move probability the long-term mix must honour.
    """

    local_iters: int
    qg: float

    def __post_init__(self) -> None:
        if self.local_iters <= 0:
            raise ConfigurationError(
                f"local_iters must be positive, got {self.local_iters}"
            )
        if not (0.0 < self.qg < 1.0):
            raise ConfigurationError(f"qg must be in (0, 1), got {self.qg}")

    @property
    def global_iters(self) -> int:
        """Iterations per global phase: round(i · qg / (1 − qg)), at least 1."""
        return max(1, round(self.local_iters * self.qg / (1.0 - self.qg)))

    @property
    def cycle_iters(self) -> int:
        """Iterations per full global+local cycle."""
        return self.global_iters + self.local_iters

    def effective_qg(self) -> float:
        """The qg the schedule actually realises after integer rounding."""
        return self.global_iters / self.cycle_iters

    def cycles(self, total_iterations: int) -> Iterator[Tuple[int, int]]:
        """Yield (global_iters, local_iters) pairs totalling exactly
        *total_iterations*.

        The final cycle is truncated proportionally so short runs do not
        overshoot; a run shorter than one cycle becomes a single
        proportional mini-cycle.
        """
        if total_iterations < 0:
            raise ConfigurationError(
                f"total_iterations must be >= 0, got {total_iterations}"
            )
        remaining = total_iterations
        g, l = self.global_iters, self.local_iters
        while remaining > 0:
            if remaining >= g + l:
                yield (g, l)
                remaining -= g + l
            else:
                # Truncated final cycle, preserving the g:l ratio.
                g_last = min(remaining, max(0, round(remaining * self.qg)))
                yield (g_last, remaining - g_last)
                remaining = 0

    def n_cycles(self, total_iterations: int) -> int:
        """Number of cycles (including a truncated final one)."""
        return sum(1 for _ in self.cycles(total_iterations))

    @classmethod
    def from_global_phase_time(
        cls, qg: float, global_phase_seconds: float, seconds_per_iteration: float
    ) -> "PhaseSchedule":
        """Build a schedule from a target global-phase *duration* — how
        Fig. 2's x-axis is specified ("time per global phase").
        """
        if global_phase_seconds <= 0 or seconds_per_iteration <= 0:
            raise ConfigurationError("durations must be positive")
        g = max(1, round(global_phase_seconds / seconds_per_iteration))
        l = max(1, round(g * (1.0 - qg) / qg))
        return cls(local_iters=l, qg=qg)
