"""Independent sub-image MCMC tasks.

The intelligent, blind and naive pipelines all reduce to the same unit
of work: run a complete RJMCMC chain over one rectangular region of the
image, with that region's own prior knowledge, and return the fitted
circles (in global coordinates) plus diagnostics.  This module defines
that unit as a picklable task + a module-level worker function, so the
same code runs on every executor.

The worker reads pixels from the per-process image installed by
:mod:`repro.parallel.sharedmem` — task messages carry geometry and
parameters only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


from repro.errors import PartitioningError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.mcmc.chain import MarkovChain
from repro.mcmc.diagnostics import AcceptanceStats, Trace, convergence_iteration
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.mcmc.speculative import MultiproposalChain
from repro.parallel.sharedmem import get_worker_image
from repro.utils.rng import RngStream
from repro.utils.timing import Stopwatch

__all__ = ["SubImageTask", "SubImageResult", "run_subimage_task"]


@dataclass(frozen=True)
class SubImageTask:
    """One partition's complete MCMC problem.

    Attributes
    ----------
    rect:
        Region (global image coordinates) as an (x0, y0, x1, y1) tuple
        — kept primitive so the message pickles small and fast.
    spec:
        Model spec for the sub-problem: ``width``/``height`` match the
        region's pixel window and ``expected_count`` holds the
        partition's own prior estimate (eq. (5)).
    move_config:
        Proposal mechanics.
    iterations:
        Chain length.
    seed:
        Integer entropy for the worker's private stream.
    record_every:
        Trace stride (posterior + count traces are returned for
        convergence measurement).
    """

    rect: Tuple[float, float, float, float]
    spec: ModelSpec
    move_config: MoveConfig
    iterations: int
    seed: int
    record_every: int = 50


@dataclass
class SubImageResult:
    """Worker's answer for one sub-image."""

    rect: Tuple[float, float, float, float]
    circles: List[Circle] = field(default_factory=list)
    iterations: int = 0
    elapsed_seconds: float = 0.0
    stats: AcceptanceStats = field(default_factory=AcceptanceStats)
    posterior_trace: Trace = field(default_factory=Trace)
    count_trace: Trace = field(default_factory=Trace)

    @property
    def seconds_per_iteration(self) -> float:
        return self.elapsed_seconds / self.iterations if self.iterations else 0.0

    def convergence_iteration(self, **kwargs) -> Optional[int]:
        """Where the posterior trace settles (see
        :func:`repro.mcmc.diagnostics.convergence_iteration`)."""
        return convergence_iteration(self.posterior_trace, **kwargs)


def run_subimage_task(task: SubImageTask) -> SubImageResult:
    """Execute one sub-image chain against the installed worker image."""
    pixels = get_worker_image()
    rect = Rect(*task.rect)
    rows, cols = rect.pixel_slices()
    patch = pixels[rows, cols]
    if patch.size == 0:
        raise PartitioningError(f"sub-image rect {rect} covers no pixels")
    if patch.shape != (task.spec.height, task.spec.width):
        raise PartitioningError(
            f"task spec says {task.spec.height}x{task.spec.width} but rect "
            f"{rect} yields {patch.shape}"
        )

    post = PosteriorState(
        Image(patch),
        task.spec,
        row_offset=rows.start,
        col_offset=cols.start,
        bounds=rect,
    )
    gen = MoveGenerator(task.spec, task.move_config, mode="full")
    # proposal_batch >= 1 routes the partition chain through the batched
    # multiproposal kernel; width 1 is the classic chain bit-for-bit, so
    # the four-strategy parity suite can gate the batched engine
    # end-to-end through every pipeline.
    if task.move_config.proposal_batch >= 1:
        chain = MultiproposalChain(
            post, gen, width=task.move_config.proposal_batch,
            seed=RngStream(task.seed), record_every=task.record_every,
        )
    else:
        chain = MarkovChain(
            post, gen, seed=RngStream(task.seed), record_every=task.record_every
        )
    watch = Stopwatch().start()
    chain.run(task.iterations)
    elapsed = watch.stop()

    return SubImageResult(
        rect=task.rect,
        circles=post.snapshot_circles(),
        iterations=task.iterations,
        elapsed_seconds=elapsed,
        stats=chain.stats,
        posterior_trace=chain.posterior_trace,
        count_trace=chain.count_trace,
    )


def make_subimage_task(
    rect: Rect,
    base_spec: ModelSpec,
    move_config: MoveConfig,
    expected_count: float,
    iterations: int,
    seed: int,
    record_every: int = 50,
) -> SubImageTask:
    """Build a task for *rect*, deriving the sub-spec from *base_spec*.

    The sub-spec keeps every model parameter except the image dimensions
    (set to the region's pixel window) and the expected count (the
    region's own estimate — the §VIII prior-allocation step).
    """
    rows, cols = rect.pixel_slices()
    height = rows.stop - rows.start
    width = cols.stop - cols.start
    if height <= 0 or width <= 0:
        raise PartitioningError(f"rect {rect} covers no pixel centres")
    sub_spec = base_spec.with_bounds(width, height).with_expected_count(
        max(expected_count, 0.5)
    )
    return SubImageTask(
        rect=(rect.x0, rect.y0, rect.x1, rect.y1),
        spec=sub_spec,
        move_config=move_config,
        iterations=iterations,
        seed=seed,
        record_every=record_every,
    )
