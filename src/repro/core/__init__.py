"""The paper's contributions: periodic partitioning, the runtime model,
and the two aggressive partitioning pipelines.

* :mod:`repro.core.theory` — eqs. (2)–(4): predicted runtimes for
  periodic partitioning, optionally with speculative moves.
* :mod:`repro.core.phases` — the global/local phase schedule that keeps
  long-term move-proposal probabilities unchanged (§V).
* :mod:`repro.core.periodic` — the periodic-partitioning sampler
  (statistically equivalent to conventional MCMC).
* :mod:`repro.core.intelligent_pipeline` / :mod:`repro.core.blind_pipeline`
  — the §VIII methods that trade statistical purity for speed.
* :mod:`repro.core.naive` — the broken baseline the paper warns about,
  kept for demonstrating the boundary anomalies.
* :mod:`repro.core.evaluation` — result-quality metrics against ground
  truth.

All four partitioning schemes are registered strategies of the unified
detection engine (:mod:`repro.engine`) — the ``run_*`` functions here
are compatibility shims that build a
:class:`~repro.engine.schema.DetectionRequest` and delegate.
"""

from repro.core.theory import (
    eq2_runtime,
    eq3_runtime,
    eq4_runtime,
    periodic_runtime_fraction,
    fig1_series,
)
from repro.core.phases import PhaseSchedule
from repro.core.subimage import (
    SubImageTask,
    SubImageResult,
    run_subimage_task,
    make_subimage_task,
)
from repro.core.partition_runner import (
    LocalPhaseTask,
    LocalPhaseResult,
    run_local_phase_task,
    build_local_phase_tasks,
    apply_local_phase_results,
)
from repro.core.periodic import (
    PeriodicPartitioningSampler,
    PeriodicResult,
    single_point_partitioner,
    grid_partitioner,
)
from repro.core.intelligent_pipeline import (
    IntelligentPipelineResult,
    PartitionRunReport,
    run_intelligent_pipeline,
)
from repro.core.blind_pipeline import BlindPipelineResult, run_blind_pipeline
from repro.core.naive import NaiveResult, run_naive_partitioning
from repro.core.evaluation import MatchReport, evaluate_model, anomalies_near_lines

__all__ = [
    "eq2_runtime",
    "eq3_runtime",
    "eq4_runtime",
    "periodic_runtime_fraction",
    "fig1_series",
    "PhaseSchedule",
    "SubImageTask",
    "SubImageResult",
    "run_subimage_task",
    "make_subimage_task",
    "LocalPhaseTask",
    "LocalPhaseResult",
    "run_local_phase_task",
    "build_local_phase_tasks",
    "apply_local_phase_results",
    "PeriodicPartitioningSampler",
    "PeriodicResult",
    "single_point_partitioner",
    "grid_partitioner",
    "IntelligentPipelineResult",
    "PartitionRunReport",
    "run_intelligent_pipeline",
    "BlindPipelineResult",
    "run_blind_pipeline",
    "NaiveResult",
    "run_naive_partitioning",
    "MatchReport",
    "evaluate_model",
    "anomalies_near_lines",
]
