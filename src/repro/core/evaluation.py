"""Result-quality metrics against ground truth.

The paper judges partitioned runs qualitatively ("no apparent
anomalies"); synthetic scenes let us quantify: match found circles to
ground-truth circles (greedy nearest-centre matching), then report
precision / recall / F1 and geometric errors, plus an anomaly counter
that localises false positives and misses to partition boundaries —
the signature failure mode of naive partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geometry.circle import Circle
from repro.partitioning.merge import match_circles

__all__ = ["MatchReport", "evaluate_model", "anomalies_near_lines"]


@dataclass
class MatchReport:
    """Matching outcome between a fitted model and ground truth."""

    n_truth: int
    n_found: int
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    mean_center_error: float = 0.0
    mean_radius_error: float = 0.0

    @property
    def n_matched(self) -> int:
        return len(self.pairs)

    @property
    def n_missed(self) -> int:
        """Ground-truth artifacts with no matching detection."""
        return self.n_truth - self.n_matched

    @property
    def n_spurious(self) -> int:
        """Detections with no matching ground-truth artifact (includes
        duplicates of an already-matched artifact)."""
        return self.n_found - self.n_matched

    @property
    def precision(self) -> float:
        return self.n_matched / self.n_found if self.n_found else 0.0

    @property
    def recall(self) -> float:
        return self.n_matched / self.n_truth if self.n_truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def evaluate_model(
    found: Sequence[Circle],
    truth: Sequence[Circle],
    max_distance: float = 5.0,
) -> MatchReport:
    """Match *found* against *truth* and summarise the quality.

    *max_distance* is the centre-distance gate for a valid match (the
    same tolerance the §IX merge heuristic uses).
    """
    pairs = match_circles(list(found), list(truth), max_distance)
    if pairs:
        ce = sum(found[i].distance_to(truth[j]) for i, j in pairs) / len(pairs)
        re = sum(abs(found[i].r - truth[j].r) for i, j in pairs) / len(pairs)
    else:
        ce = re = 0.0
    return MatchReport(
        n_truth=len(truth),
        n_found=len(found),
        pairs=pairs,
        mean_center_error=ce,
        mean_radius_error=re,
    )


def anomalies_near_lines(
    found: Sequence[Circle],
    truth: Sequence[Circle],
    lines: Sequence[Tuple[str, float]],
    band: float,
    max_distance: float = 5.0,
) -> dict:
    """Count matching failures inside and outside boundary bands.

    Parameters
    ----------
    lines:
        Partition cut lines as ('v'|'h', coordinate) pairs
        (:meth:`repro.core.naive.NaiveResult.cut_lines` produces these).
    band:
        Half-width of the boundary band: a circle is "near" a line when
        its centre is within *band* of it.

    Returns a dict with spurious/missed counts split by location —
    naive partitioning concentrates both near the cuts, periodic
    partitioning does not.
    """
    if band < 0:
        raise ConfigurationError(f"band must be >= 0, got {band}")

    def near(c: Circle) -> bool:
        for axis, coord in lines:
            d = abs((c.x if axis == "v" else c.y) - coord)
            if d <= band:
                return True
        return False

    report = evaluate_model(found, truth, max_distance)
    matched_found = {i for i, _ in report.pairs}
    matched_truth = {j for _, j in report.pairs}

    spurious = [c for i, c in enumerate(found) if i not in matched_found]
    missed = [c for j, c in enumerate(truth) if j not in matched_truth]
    return {
        "spurious_near_boundary": sum(1 for c in spurious if near(c)),
        "spurious_elsewhere": sum(1 for c in spurious if not near(c)),
        "missed_near_boundary": sum(1 for c in missed if near(c)),
        "missed_elsewhere": sum(1 for c in missed if not near(c)),
        "report": report,
    }
