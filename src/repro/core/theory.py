"""Theoretical runtime model — §VI, eqs. (2)–(4) and Fig. 1.

Notation (the paper's):

=============  =====================================================
``N``          total MCMC iterations
``qg``         probability an arbitrary move is global
``tau_g``      mean seconds per global (``Mg``) move
``tau_l``      mean seconds per local (``Ml``) move
``s``          number of partitions / machines in the local phase
``n``, ``t``   threads used for speculative moves
``p_gr``       probability a global move is rejected
``p_lr``       probability a local move is rejected
=============  =====================================================

All three equations assume negligible parallelisation overhead; the
simulator in :mod:`repro.parallel.simcluster` adds the overhead terms
the paper's measurements exhibit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.mcmc.speculative import speculative_speedup
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "eq2_runtime",
    "eq3_runtime",
    "eq4_runtime",
    "periodic_runtime_fraction",
    "fig1_series",
]


def _check_common(n_iterations: float, qg: float, tau_g: float, tau_l: float, s: int):
    if n_iterations < 0:
        raise ConfigurationError(f"N must be >= 0, got {n_iterations}")
    check_probability("qg", qg)
    check_positive("tau_g", tau_g)
    check_positive("tau_l", tau_l)
    if s < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")


def eq2_runtime(
    n_iterations: float, qg: float, tau_g: float, tau_l: float, s: int
) -> float:
    """Eq. (2): periodic partitioning with *s* parallel partitions.

        T = N·qg·τg + N·(1−qg)·τl / s
    """
    _check_common(n_iterations, qg, tau_g, tau_l, s)
    return n_iterations * qg * tau_g + n_iterations * (1.0 - qg) * tau_l / s


def eq3_runtime(
    n_iterations: float,
    qg: float,
    tau_g: float,
    tau_l: float,
    s: int,
    n_speculative: int,
    p_gr: float,
) -> float:
    """Eq. (3): eq. (2) plus speculative execution of the global phases.

        T = N·qg·τg·(1−p_gr)/(1−p_gr^n) + N·(1−qg)·τl / s
    """
    _check_common(n_iterations, qg, tau_g, tau_l, s)
    frac = speculative_speedup(p_gr, n_speculative)
    return (
        n_iterations * qg * tau_g * frac
        + n_iterations * (1.0 - qg) * tau_l / s
    )


def eq4_runtime(
    n_iterations: float,
    qg: float,
    tau_g: float,
    tau_l: float,
    s: int,
    t: int,
    p_gr: float,
    p_lr: float,
) -> float:
    """Eq. (4): a cluster of *s* machines, each with *t* threads —
    speculative moves accelerate both phases:

        T = N·qg·τg·(1−p_gr)/(1−p_gr^t)
          + N·(1−qg)·τl·(1−p_lr) / (s·(1−p_lr^t))
    """
    _check_common(n_iterations, qg, tau_g, tau_l, s)
    g_frac = speculative_speedup(p_gr, t)
    l_frac = speculative_speedup(p_lr, t)
    return (
        n_iterations * qg * tau_g * g_frac
        + n_iterations * (1.0 - qg) * tau_l * l_frac / s
    )


def periodic_runtime_fraction(
    qg: float, s: int, tau_ratio: float = 1.0
) -> float:
    """Eq. (2) as a fraction of the sequential runtime.

    *tau_ratio* = τg/τl; the Fig. 1 curves use τg = τl (ratio 1), giving

        fraction = qg + (1 − qg)/s         (when τg = τl)
    """
    check_probability("qg", qg)
    if s < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")
    check_positive("tau_ratio", tau_ratio)
    sequential = qg * tau_ratio + (1.0 - qg)
    parallel = qg * tau_ratio + (1.0 - qg) / s
    return parallel / sequential


def fig1_series(
    qg_values: Sequence[float], process_counts: Sequence[int]
) -> Dict[int, List[float]]:
    """The Fig. 1 data: runtime fraction vs qg, one series per process
    count (2, 4, 8, 16 in the paper), with τg = τl."""
    if not qg_values or not process_counts:
        raise ConfigurationError("need at least one qg value and one process count")
    return {
        s: [periodic_runtime_fraction(qg, s) for qg in qg_values]
        for s in process_counts
    }
