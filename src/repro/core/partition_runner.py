"""Local-phase execution across partitions (§V's ``Ml`` phases).

The master (the periodic sampler) classifies features against the
cycle's partition grid, allocates iterations, and builds one
:class:`LocalPhaseTask` per non-empty partition.  Workers run a
local-move-only chain over their partition patch — modifiable features
mutable, frozen features visible read-only — and return the final
coordinates of the modifiable features.  The master then replays the
coordinate changes onto its own posterior state with the incremental
primitives, so the master's cached log-posterior stays exact without
any full recomputation.

Why replaying is sound: local moves never change the feature count, and
the safety margin guarantees a worker's accepted moves touch only
pixels and neighbour pairs inside its own partition, so per-feature
final coordinates compose across partitions without interaction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


from repro.errors import PartitioningError
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.mcmc.chain import MarkovChain
from repro.mcmc.coverage import CoverageRaster
from repro.mcmc.diagnostics import AcceptanceStats
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.sharedmem import get_worker_image
from repro.partitioning.classify import PartitionPlan
from repro.utils.rng import RngStream

__all__ = [
    "LocalPhaseTask",
    "LocalPhaseResult",
    "run_local_phase_task",
    "build_local_phase_tasks",
    "apply_local_phase_results",
]

#: Per-thread cache of one scratch-warmed CoverageRaster per worker.
#: Local-phase tasks arrive every cycle with similar patch sizes, so
#: reusing a raster (counts plane + trial/batch scratch, all grown to
#: the high-water mark) removes the per-task allocation burst.  Keyed
#: per thread: serial and thread executors share this process, process
#: executors each get their own module copy — all cases are race-free.
_worker_state = threading.local()


def _acquire_worker_raster(height: int, width: int) -> CoverageRaster:
    """The calling thread's cached raster (created on first use).

    The caller hands it to :class:`PosteriorState` via ``coverage=``,
    which resets it to the task's window and offsets.
    """
    raster: Optional[CoverageRaster] = getattr(_worker_state, "raster", None)
    if raster is None:
        raster = CoverageRaster(height, width)
        _worker_state.raster = raster
    return raster


@dataclass(frozen=True)
class LocalPhaseTask:
    """One partition's share of a local phase (picklable, array-based)."""

    rect: Tuple[float, float, float, float]
    margin: float
    iterations: int
    seed: int
    spec: ModelSpec
    move_config: MoveConfig
    #: master indices of the modifiable features (returned unchanged)
    mod_ids: Tuple[int, ...]
    #: geometry of modifiable features, parallel to mod_ids
    mod_xs: Tuple[float, ...]
    mod_ys: Tuple[float, ...]
    mod_rs: Tuple[float, ...]
    #: geometry of frozen context features (read-only in the worker)
    frz_xs: Tuple[float, ...] = ()
    frz_ys: Tuple[float, ...] = ()
    frz_rs: Tuple[float, ...] = ()
    #: > 1 runs the partition's chain in speculative rounds (the eq. (4)
    #: configuration: every cluster machine also speculates with its
    #: *t* threads); the chain law is unchanged.
    speculative_width: int = 1


@dataclass
class LocalPhaseResult:
    """Final modifiable-feature geometry after the partition's chain."""

    mod_ids: Tuple[int, ...]
    xs: List[float]
    ys: List[float]
    rs: List[float]
    iterations: int
    stats: AcceptanceStats = field(default_factory=AcceptanceStats)
    #: speculative rounds used (== iterations when width is 1)
    rounds: int = 0


def run_local_phase_task(task: LocalPhaseTask) -> LocalPhaseResult:
    """Worker body: local-move MCMC restricted to one partition."""
    pixels = get_worker_image()
    rect = Rect(*task.rect)
    rows, cols = rect.pixel_slices()
    patch = pixels[rows, cols]
    if patch.size == 0:
        raise PartitioningError(f"partition rect {rect} covers no pixels")

    post = PosteriorState(
        Image(patch),
        task.spec,
        row_offset=rows.start,
        col_offset=cols.start,
        bounds=Rect(0.0, 0.0, float(task.spec.width), float(task.spec.height)),
        coverage=_acquire_worker_raster(patch.shape[0], patch.shape[1]),
    )
    # Load modifiable features first so their local indices are 0..k-1,
    # then the frozen context.  The cache is left at an arbitrary offset
    # (resync skipped): only deltas matter for accept/reject, and a full
    # recomputation per phase would dominate the phase's useful work.
    local_ids: List[int] = []
    for x, y, r in zip(task.mod_xs, task.mod_ys, task.mod_rs):
        idx = post.config.add(float(x), float(y), float(r))
        post.likelihood.add_disc_delta(post.coverage, float(x), float(y), float(r))
        local_ids.append(idx)
    for x, y, r in zip(task.frz_xs, task.frz_ys, task.frz_rs):
        post.config.add(float(x), float(y), float(r))
        post.likelihood.add_disc_delta(post.coverage, float(x), float(y), float(r))
    post.set_log_posterior(0.0)

    gen = MoveGenerator(
        task.spec,
        task.move_config,
        mode="local",
        allowed_indices=local_ids,
        constraint=(rect, task.margin),
    )
    if task.move_config.proposal_batch >= 1:
        from repro.mcmc.speculative import MultiproposalChain

        mp_chain = MultiproposalChain(
            post, gen, width=task.move_config.proposal_batch,
            seed=RngStream(task.seed), record_every=max(1, task.iterations),
        )
        mp_chain.run(task.iterations)
        stats = mp_chain.stats
        rounds = mp_chain.rounds
    elif task.speculative_width > 1:
        from repro.mcmc.speculative import SpeculativeChain

        spec_chain = SpeculativeChain(
            post, gen, width=task.speculative_width, seed=RngStream(task.seed),
            record_every=max(1, task.iterations),
        )
        spec_chain.run(task.iterations)
        stats = spec_chain.stats
        rounds = spec_chain.rounds
    else:
        chain = MarkovChain(
            post, gen, seed=RngStream(task.seed),
            record_every=max(1, task.iterations),
        )
        chain.run(task.iterations)
        stats = chain.stats
        rounds = task.iterations

    xs = [float(post.config.xs[i]) for i in local_ids]
    ys = [float(post.config.ys[i]) for i in local_ids]
    rs = [float(post.config.rs[i]) for i in local_ids]
    return LocalPhaseResult(
        mod_ids=task.mod_ids,
        xs=xs,
        ys=ys,
        rs=rs,
        iterations=task.iterations,
        stats=stats,
        rounds=rounds,
    )


def build_local_phase_tasks(
    post: PosteriorState,
    plan: PartitionPlan,
    allocations: Sequence[int],
    move_config: MoveConfig,
    stream: RngStream,
    speculative_width: int = 1,
) -> List[LocalPhaseTask]:
    """Materialise tasks for every partition with work to do.

    Each task receives an independent child seed so results do not
    depend on executor scheduling order.
    """
    if len(allocations) != len(plan.partitions):
        raise PartitioningError(
            f"{len(allocations)} allocations for {len(plan.partitions)} partitions"
        )
    seeds = stream.spawn(len(plan.partitions))
    tasks: List[LocalPhaseTask] = []
    cfg = post.config
    for ctx, alloc, seed in zip(plan.partitions, allocations, seeds):
        if alloc <= 0 or not ctx.modifiable:
            continue
        frozen = ctx.frozen
        tasks.append(
            LocalPhaseTask(
                rect=(ctx.rect.x0, ctx.rect.y0, ctx.rect.x1, ctx.rect.y1),
                margin=plan.margin,
                iterations=int(alloc),
                seed=_entropy_int(seed),
                spec=post.spec,
                move_config=move_config,
                speculative_width=speculative_width,
                mod_ids=tuple(int(i) for i in ctx.modifiable),
                mod_xs=tuple(float(cfg.xs[i]) for i in ctx.modifiable),
                mod_ys=tuple(float(cfg.ys[i]) for i in ctx.modifiable),
                mod_rs=tuple(float(cfg.rs[i]) for i in ctx.modifiable),
                frz_xs=tuple(float(cfg.xs[i]) for i in frozen),
                frz_ys=tuple(float(cfg.ys[i]) for i in frozen),
                frz_rs=tuple(float(cfg.rs[i]) for i in frozen),
            )
        )
    return tasks


def _entropy_int(stream: RngStream) -> int:
    """A 63-bit seed integer derived from a child stream."""
    return int(stream.rng.integers(0, 2**63 - 1))


def apply_local_phase_results(
    post: PosteriorState,
    results: Sequence[LocalPhaseResult],
    position_tol: float = 0.0,
) -> AcceptanceStats:
    """Replay workers' final coordinates onto the master posterior.

    Only features whose geometry actually changed incur incremental
    updates.  Returns the merged acceptance statistics of all workers.
    """
    merged = AcceptanceStats()
    for res in results:
        merged.merge(res.stats)
        for mid, x, y, r in zip(res.mod_ids, res.xs, res.ys, res.rs):
            ox, oy = post.config.position_of(mid)
            if abs(ox - x) > position_tol or abs(oy - y) > position_tol:
                post.move_circle(mid, x, y)
            if abs(post.config.radius_of(mid) - r) > position_tol:
                post.resize_circle(mid, r)
    return merged
