"""Blind partitioning pipeline (§VIII–IX, Fig. 4).

Stages:

1. split the image into an ``nx × ny`` grid of *core* cells, each
   expanded by an overlap margin sized so "the largest expected
   artifact will fit inside" (the paper uses 1.1 × the expected
   radius);
2. estimate each expanded region's artifact count with eq. (5);
3. run an independent full RJMCMC chain per expanded region;
4. reconcile the overlapping models with the §IX heuristics
   (:func:`repro.partitioning.merge.merge_blind_models`): core-filter,
   union, proximity-merge duplicates, apply the dispute policy.

Unlike periodic partitioning this is *not* statistically equivalent to
conventional MCMC — the result is a point estimate with possible
boundary anomalies, in exchange for fully independent (hence perfectly
parallel) partition processing.

.. note::
   The orchestration now lives in the unified engine
   (:mod:`repro.engine`); :func:`run_blind_pipeline` is a compatibility
   shim over the ``"blind"`` strategy, bit-identical to the pre-engine
   behaviour for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PartitioningError
from repro.geometry.circle import Circle
from repro.imaging.image import Image
from repro.core.subimage import SubImageResult
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.executor import Executor
from repro.parallel.scheduler import makespan
from repro.partitioning.blind import BlindPartition
from repro.partitioning.merge import MergeReport
from repro.utils.rng import SeedLike

__all__ = ["BlindPipelineResult", "run_blind_pipeline"]


@dataclass
class BlindPipelineResult:
    """Outcome of a blind-partitioning run."""

    partitions: List[BlindPartition]
    sub_results: List[SubImageResult]
    merge_report: MergeReport
    est_counts: List[float] = field(default_factory=list)

    @property
    def circles(self) -> List[Circle]:
        return self.merge_report.circles

    def partition_runtimes(self) -> List[float]:
        return [r.elapsed_seconds for r in self.sub_results]

    def longest_partition_seconds(self) -> float:
        """Runtime with one processor per partition — "the runtime of
        the whole procedure ... is ≈ the longest time taken to process
        a partition as the merging ... takes negligible time" (§IX)."""
        return max(self.partition_runtimes(), default=0.0)

    def runtime_with_processors(self, n_processors: int) -> float:
        """LPT makespan of partition runtimes on *n_processors*."""
        costs = self.partition_runtimes()
        return makespan(costs, n_processors) if costs else 0.0

    def relative_runtimes(self, sequential_seconds: float) -> List[float]:
        """Per-partition runtime as a fraction of a sequential baseline
        (the §IX quadrant numbers: 0.12 / 0.08 / 0.27 / 0.11)."""
        if sequential_seconds <= 0:
            raise PartitioningError("sequential baseline must be positive")
        return [t / sequential_seconds for t in self.partition_runtimes()]


def run_blind_pipeline(
    image: Image,
    spec: ModelSpec,
    move_config: MoveConfig,
    iterations_per_partition: int,
    nx: int = 2,
    ny: int = 2,
    overlap_factor: float = 1.1,
    theta: float = 0.5,
    merge_distance: float = 5.0,
    dispute_policy: str = "accept",
    executor: Optional[Executor] = None,
    seed: SeedLike = None,
    record_every: int = 50,
) -> BlindPipelineResult:
    """Run the full blind-partitioning pipeline on *image*.

    Compatibility shim over ``repro.engine.run(strategy="blind")``.

    Parameters
    ----------
    nx, ny:
        Core grid shape (the paper's example is 2×2, "four equal sized
        areas").
    overlap_factor:
        Overlap margin as a multiple of ``spec.radius_mean`` ("we have
        extended each partition boundary edge by 1.1 times the expected
        artifact radius").
    merge_distance, dispute_policy:
        Passed to :func:`repro.partitioning.merge.merge_blind_models`.
    """
    from repro.engine import DetectionRequest, run

    request = DetectionRequest(
        image=image,
        spec=spec,
        move_config=move_config,
        iterations=iterations_per_partition,
        strategy="blind",
        executor=executor if executor is not None else "serial",
        seed=seed,
        record_every=record_every,
        options={
            "nx": nx,
            "ny": ny,
            "overlap_factor": overlap_factor,
            "theta": theta,
            "merge_distance": merge_distance,
            "dispute_policy": dispute_policy,
        },
    )
    return run(request).raw
