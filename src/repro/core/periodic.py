"""Periodic partitioning (§V) — the paper's primary contribution.

The sampler alternates:

1. a **global phase**: ``g`` iterations of ``Mg`` moves (birth, death,
   split, merge, replace) on the whole image, strictly sequential;
2. a **local phase**: the image is partitioned by a freshly randomised
   grid, features are classified modifiable/frozen per partition,
   ``l`` iterations of ``Ml`` moves (translate, resize) are allocated
   across partitions proportionally to modifiable-feature counts and
   executed concurrently, then the per-partition results are merged
   back into the master model.

Because phase lengths honour ``g = l·qg/(1−qg)`` and grid offsets are
re-randomised every cycle, the long-term move mix and spatial
treatment equal the conventional sampler's — the paper's argument for
statistical validity.  The sampler records wall-clock per component so
the Fig. 2 trade-off (phase length vs overhead) can be measured
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.image import Image
from repro.mcmc.chain import MarkovChain
from repro.mcmc.diagnostics import AcceptanceStats, Trace
from repro.mcmc.moves import MoveGenerator
from repro.mcmc.posterior import PosteriorState
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.core.partition_runner import (
    apply_local_phase_results,
    build_local_phase_tasks,
    run_local_phase_task,
)
from repro.core.phases import PhaseSchedule
from repro.mcmc.samples import SampleCollector
from repro.mcmc.speculative import MultiproposalChain, SpeculativeChain
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.sharedmem import set_worker_image
from repro.partitioning.allocation import allocate_iterations
from repro.partitioning.classify import classify_features
from repro.partitioning.grid import grid_partitions, single_point_partition
from repro.utils.rng import RngStream, SeedLike, coerce_stream
from repro.utils.timing import Stopwatch, TimingAccumulator

__all__ = [
    "PeriodicPartitioningSampler",
    "PeriodicResult",
    "single_point_partitioner",
    "grid_partitioner",
]

Partitioner = Callable[[Rect, RngStream], Sequence[Rect]]


def single_point_partitioner() -> Partitioner:
    """Fig. 2's scheme: one random interior point, four rectangles."""

    def partition(bounds: Rect, stream: RngStream) -> Sequence[Rect]:
        return single_point_partition(bounds, seed=stream).cells

    return partition


def grid_partitioner(spacing_x: float, spacing_y: float) -> Partitioner:
    """The general §V scheme: uniform grid with random offsets."""

    def partition(bounds: Rect, stream: RngStream) -> Sequence[Rect]:
        return grid_partitions(bounds, spacing_x, spacing_y, seed=stream).cells

    return partition


@dataclass
class PeriodicResult:
    """Outcome of a periodic-partitioning run."""

    iterations: int
    cycles: int
    elapsed_seconds: float
    timings: TimingAccumulator
    global_stats: AcceptanceStats
    local_stats: AcceptanceStats
    posterior_trace: Trace
    count_trace: Trace
    final_circles: List[Circle] = field(default_factory=list)
    #: speculative rounds executed in global phases (None when the
    #: global phases ran conventionally) — with *t* true threads, the
    #: eq. (3) wall clock of the global work would be rounds × τ_g
    #: instead of iterations × τ_g.
    global_rounds: Optional[int] = None
    #: speculative rounds consumed across all local-phase workers (None
    #: when local phases ran conventionally) — the eq. (4) analogue for
    #: the parallel term.
    local_rounds: Optional[int] = None

    @property
    def global_seconds(self) -> float:
        return self.timings.total("global_phase")

    @property
    def local_seconds(self) -> float:
        return self.timings.total("local_phase")

    @property
    def overhead_seconds(self) -> float:
        return self.timings.total("partition_overhead")


class PeriodicPartitioningSampler:
    """The §V sampler over a posterior state.

    Parameters
    ----------
    image, spec, move_config:
        The problem definition (same objects a sequential
        :class:`~repro.mcmc.chain.MarkovChain` would use).
    schedule:
        Phase lengths (see :class:`~repro.core.phases.PhaseSchedule`);
        its ``qg`` should match ``move_config.qg``.
    partitioner:
        Draws the cycle's partition cells; defaults to the Fig. 2
        single-point scheme.
    executor:
        Where local-phase tasks run.  The default serial executor gives
        the reference semantics; pass a
        :class:`~repro.parallel.process.ProcessExecutor` configured with
        the shared image for real parallelism.
    speculative_width:
        > 1 enables speculative execution of the *global* phases — the
        eq. (3) configuration.  The chain law is unchanged (at most one
        speculatively considered move applies per round); the result's
        ``global_rounds`` reports how many rounds the phase needed, from
        which eq. (3)'s wall clock follows.
    sample_collector:
        Optional :class:`~repro.mcmc.samples.SampleCollector` offered
        the state after every phase (post-convergence posterior
        summaries, §II's "samples at regular intervals").
    """

    def __init__(
        self,
        image: Image,
        spec: ModelSpec,
        move_config: MoveConfig,
        schedule: PhaseSchedule,
        partitioner: Optional[Partitioner] = None,
        executor: Optional[Executor] = None,
        seed: SeedLike = None,
        record_every: int = 100,
        speculative_width: int = 1,
        local_speculative_width: int = 1,
        sample_collector: Optional[SampleCollector] = None,
    ) -> None:
        if abs(schedule.qg - move_config.qg) > 1e-9:
            raise ConfigurationError(
                f"schedule qg={schedule.qg} disagrees with move_config qg="
                f"{move_config.qg}"
            )
        self.image = image
        self.spec = spec
        self.move_config = move_config
        self.schedule = schedule
        self.partitioner = partitioner or single_point_partitioner()
        self.executor = executor or SerialExecutor()
        self._owns_executor = executor is None
        root = coerce_stream(seed)
        self._global_stream = root.spawn_one()
        self._grid_stream = root.spawn_one()
        self._task_stream = root.spawn_one()

        if speculative_width < 1:
            raise ConfigurationError(
                f"speculative_width must be >= 1, got {speculative_width}"
            )
        if local_speculative_width < 1:
            raise ConfigurationError(
                f"local_speculative_width must be >= 1, got {local_speculative_width}"
            )
        self.speculative_width = speculative_width
        self.local_speculative_width = local_speculative_width
        self.sample_collector = sample_collector
        #: speculative rounds consumed by local-phase workers (eq. (4)'s
        #: modeled local wall clock is rounds × τ_l instead of
        #: iterations × τ_l when workers have t true threads each)
        self.local_rounds = 0

        self.post = PosteriorState(image, spec)
        self._global_gen = MoveGenerator(spec, move_config, mode="global")
        # Kernel selection for the global phases, in precedence order:
        # proposal_batch >= 1 (batched multiproposal rounds) beats
        # speculative_width > 1 (modelled thread-parallel rounds) beats
        # the classic one-proposal chain.  proposal_batch == 1 is the
        # classic chain bit-for-bit through the batched engine.
        self._multiproposal_chain: Optional[MultiproposalChain] = None
        self._speculative_chain: Optional[SpeculativeChain] = None
        self._global_chain: Optional[MarkovChain] = None
        if move_config.proposal_batch >= 1:
            self._multiproposal_chain = MultiproposalChain(
                self.post, self._global_gen, width=move_config.proposal_batch,
                seed=self._global_stream, record_every=record_every,
            )
        elif speculative_width > 1:
            self._speculative_chain = SpeculativeChain(
                self.post, self._global_gen, width=speculative_width,
                seed=self._global_stream, record_every=record_every,
            )
        else:
            self._global_chain = MarkovChain(
                self.post, self._global_gen, seed=self._global_stream,
                record_every=record_every,
            )
        # Serial/thread executors run worker code in this process: give it
        # the image.  Process executors install theirs via the pool
        # initializer; this call is still correct for the master process.
        set_worker_image(image.pixels)

        self.record_every = record_every
        self.iterations_done = 0
        self.cycles_done = 0
        self.timings = TimingAccumulator()
        self.local_stats = AcceptanceStats()
        self.posterior_trace = Trace()
        self.count_trace = Trace()

    # -- phases -------------------------------------------------------------
    def run_global_phase(self, iterations: int) -> None:
        """``Mg`` iterations on the whole image — sequentially, or in
        speculative rounds when ``speculative_width > 1``."""
        watch = Stopwatch().start()
        if self._multiproposal_chain is not None:
            self._multiproposal_chain.run(iterations)
        elif self._speculative_chain is not None:
            self._speculative_chain.run(iterations)
        else:
            self._global_chain.run(iterations)
        self.timings.add("global_phase", watch.stop())
        self.iterations_done += iterations
        if self.sample_collector is not None:
            self.sample_collector.offer(
                self.iterations_done, self.post.snapshot_circles()
            )

    def run_local_phase(self, iterations: int) -> None:
        """One partitioned ``Ml`` phase: partition, classify, allocate,
        execute, merge."""
        overhead_watch = Stopwatch().start()
        cells = list(self.partitioner(self.post.bounds, self._grid_stream))
        if not cells:
            raise ConfigurationError("partitioner returned no cells")
        plan = classify_features(self.post.config, cells, self.spec, self.move_config)
        allocations = allocate_iterations(iterations, plan.modifiable_counts())
        tasks = build_local_phase_tasks(
            self.post, plan, allocations, self.move_config, self._task_stream,
            speculative_width=self.local_speculative_width,
        )
        self.timings.add("partition_overhead", overhead_watch.stop())

        if tasks:
            run_watch = Stopwatch().start()
            results = self.executor.map(run_local_phase_task, tasks)
            self.timings.add("local_phase", run_watch.stop())

            merge_watch = Stopwatch().start()
            stats = apply_local_phase_results(self.post, results)
            self.local_stats.merge(stats)
            self.local_rounds += sum(r.rounds for r in results)
            self.timings.add("partition_overhead", merge_watch.stop())

        self.iterations_done += iterations
        if self.record_every and (
            self.iterations_done // self.record_every
            > (self.iterations_done - iterations) // self.record_every
        ):
            self.posterior_trace.record(self.iterations_done, self.post.log_posterior)
            self.count_trace.record(self.iterations_done, float(self.post.config.n))
        if self.sample_collector is not None:
            self.sample_collector.offer(
                self.iterations_done, self.post.snapshot_circles()
            )

    # -- driver ----------------------------------------------------------------
    def run(self, total_iterations: int) -> PeriodicResult:
        """Run complete cycles until *total_iterations* are consumed."""
        watch = Stopwatch().start()
        for g_iters, l_iters in self.schedule.cycles(total_iterations):
            if g_iters:
                self.run_global_phase(g_iters)
            if l_iters:
                self.run_local_phase(l_iters)
            self.cycles_done += 1
        elapsed = watch.stop()
        return PeriodicResult(
            iterations=self.iterations_done,
            cycles=self.cycles_done,
            elapsed_seconds=elapsed,
            timings=self.timings,
            global_stats=(
                self._multiproposal_chain.stats
                if self._multiproposal_chain is not None
                else self._speculative_chain.stats
                if self._speculative_chain is not None
                else self._global_chain.stats
            ),
            global_rounds=(
                self._multiproposal_chain.rounds
                if self._multiproposal_chain is not None and self._multiproposal_chain.width > 1
                else self._speculative_chain.rounds
                if self._speculative_chain is not None
                else None
            ),
            local_rounds=(
                self.local_rounds if self.local_speculative_width > 1 else None
            ),
            local_stats=self.local_stats,
            posterior_trace=self.posterior_trace,
            count_trace=self.count_trace,
            final_circles=self.post.snapshot_circles(),
        )

    def close(self) -> None:
        """Shut down an internally created executor.

        Caller-supplied executors stay caller-owned (the engine wraps
        them in ``with``-blocks; see :mod:`repro.engine.executors`).
        """
        if self._owns_executor:
            self.executor.shutdown()

    def __enter__(self) -> "PeriodicPartitioningSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
