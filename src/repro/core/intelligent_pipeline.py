"""Intelligent partitioning pipeline (§VIII–IX, Fig. 3, Table I).

Stages, exactly as the paper runs them on the bead image:

1. threshold-filter the image (θ = 0.5 in the paper);
2. segment along empty rows/columns
   (:func:`repro.partitioning.intelligent.segment_image`);
3. estimate each partition's expected artifact count with eq. (5)
   (plus the naive area-scaled estimate, for Table I's comparison row);
4. run an independent full RJMCMC chain per partition (in parallel when
   an executor with parallelism is supplied);
5. concatenate the models — partitions are disjoint, so recombination
   is trivial.

The pipeline result carries everything Table I reports per partition:
area, the three count estimates, measured time/iteration, iterations to
convergence, runtime, and runtime relative to the unpartitioned chain.

.. note::
   The orchestration now lives in the unified engine
   (:mod:`repro.engine`); :func:`run_intelligent_pipeline` is a
   compatibility shim that builds a
   :class:`~repro.engine.schema.DetectionRequest` for the
   ``"intelligent"`` strategy and returns the strategy's raw result —
   bit-identical to the pre-engine behaviour for a fixed seed.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import List, Optional

from repro.errors import PartitioningError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.core.subimage import SubImageResult
from repro.imaging.image import Image
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.executor import Executor
from repro.parallel.scheduler import makespan
from repro.partitioning.intelligent import SegmentationResult
from repro.utils.rng import SeedLike

__all__ = ["PartitionRunReport", "IntelligentPipelineResult", "run_intelligent_pipeline"]


@dataclass
class PartitionRunReport:
    """Per-partition facts — one Table I column.

    The chain's :class:`SubImageResult` is attached (``report.result =
    ...``, or the ``result=`` constructor keyword) once the partition's
    run completes; accessing it (or any derived property) earlier
    raises :class:`~repro.errors.PartitioningError` rather than a bare
    ``AttributeError`` on ``None``.
    """

    rect: Rect
    area: float
    relative_area: float
    est_count_threshold: float  #: eq. (5) on the partition's own pixels
    est_count_density: float  #: naive area-scaled whole-image estimate
    result: InitVar[Optional[SubImageResult]] = None

    def __post_init__(self, result: Optional[SubImageResult]) -> None:
        self._result = result

    @property
    def completed(self) -> bool:
        return self._result is not None

    @property
    def n_found(self) -> int:
        return len(self.result.circles)

    @property
    def seconds_per_iteration(self) -> float:
        return self.result.seconds_per_iteration

    @property
    def runtime_seconds(self) -> float:
        return self.result.elapsed_seconds

    def convergence_iteration(self, **kwargs) -> Optional[int]:
        return self.result.convergence_iteration(**kwargs)


def _get_partition_result(self: PartitionRunReport) -> SubImageResult:
    if self._result is None:
        raise PartitioningError(
            f"partition {self.rect} has no chain result yet — the report "
            "was accessed before its run completed"
        )
    return self._result


def _set_partition_result(
    self: PartitionRunReport, value: SubImageResult
) -> None:
    self._result = value


# Installed after @dataclass has consumed the InitVar annotation, so
# `PartitionRunReport(..., result=sub)` still works while attribute
# access goes through the guard.
PartitionRunReport.result = property(_get_partition_result, _set_partition_result)


@dataclass
class IntelligentPipelineResult:
    """Everything §IX reports for intelligent partitioning."""

    segmentation: SegmentationResult
    partitions: List[PartitionRunReport]
    circles: List[Circle] = field(default_factory=list)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def longest_partition_seconds(self) -> float:
        """Runtime with one processor per partition: the slowest one
        ("the intelligent-partitioning program runtime is the longest
        time taken to process any of the partitions")."""
        return max((p.runtime_seconds for p in self.partitions), default=0.0)

    def runtime_with_processors(self, n_processors: int) -> float:
        """Runtime with load balancing onto *n_processors* (§IX's
        two-processor discussion): the LPT makespan of the partition
        runtimes."""
        costs = [p.runtime_seconds for p in self.partitions]
        return makespan(costs, n_processors) if costs else 0.0


def run_intelligent_pipeline(
    image: Image,
    spec: ModelSpec,
    move_config: MoveConfig,
    iterations_per_partition: int,
    theta: float = 0.5,
    min_gap: float = 8.0,
    pad: float = 3.0,
    trim: bool = False,
    executor: Optional[Executor] = None,
    seed: SeedLike = None,
    whole_image_count: Optional[float] = None,
    record_every: int = 50,
) -> IntelligentPipelineResult:
    """Run the full intelligent-partitioning pipeline on *image*.

    Compatibility shim over ``repro.engine.run(strategy="intelligent")``.

    Parameters
    ----------
    iterations_per_partition:
        Chain length per partition.  Iterations to convergence is
        *measured* from the trace afterwards, as in Table I.
    theta:
        Threshold for both segmentation and eq. (5) estimates.
    whole_image_count:
        Prior knowledge of the total artifact count, used for the naive
        area-scaled estimate column; defaults to eq. (5) over the whole
        image.
    """
    from repro.engine import DetectionRequest, run

    request = DetectionRequest(
        image=image,
        spec=spec,
        move_config=move_config,
        iterations=iterations_per_partition,
        strategy="intelligent",
        executor=executor if executor is not None else "serial",
        seed=seed,
        record_every=record_every,
        options={
            "theta": theta,
            "min_gap": min_gap,
            "pad": pad,
            "trim": trim,
            "whole_image_count": whole_image_count,
        },
    )
    return run(request).raw
