"""Intelligent partitioning pipeline (§VIII–IX, Fig. 3, Table I).

Stages, exactly as the paper runs them on the bead image:

1. threshold-filter the image (θ = 0.5 in the paper);
2. segment along empty rows/columns
   (:func:`repro.partitioning.intelligent.segment_image`);
3. estimate each partition's expected artifact count with eq. (5)
   (plus the naive area-scaled estimate, for Table I's comparison row);
4. run an independent full RJMCMC chain per partition (in parallel when
   an executor with parallelism is supplied);
5. concatenate the models — partitions are disjoint, so recombination
   is trivial.

The pipeline result carries everything Table I reports per partition:
area, the three count estimates, measured time/iteration, iterations to
convergence, runtime, and runtime relative to the unpartitioned chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import PartitioningError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.imaging.density import estimate_count_by_area, estimate_count_in_rect
from repro.imaging.filters import threshold_filter
from repro.imaging.image import Image
from repro.core.subimage import SubImageResult, make_subimage_task, run_subimage_task
from repro.mcmc.spec import ModelSpec, MoveConfig
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.scheduler import makespan
from repro.parallel.sharedmem import set_worker_image
from repro.partitioning.intelligent import SegmentationResult, segment_image
from repro.partitioning.merge import concat_models
from repro.utils.rng import SeedLike, coerce_stream

__all__ = ["PartitionRunReport", "IntelligentPipelineResult", "run_intelligent_pipeline"]


@dataclass
class PartitionRunReport:
    """Per-partition facts — one Table I column."""

    rect: Rect
    area: float
    relative_area: float
    est_count_threshold: float  #: eq. (5) on the partition's own pixels
    est_count_density: float  #: naive area-scaled whole-image estimate
    result: SubImageResult = None  # type: ignore[assignment]

    @property
    def n_found(self) -> int:
        return len(self.result.circles)

    @property
    def seconds_per_iteration(self) -> float:
        return self.result.seconds_per_iteration

    @property
    def runtime_seconds(self) -> float:
        return self.result.elapsed_seconds

    def convergence_iteration(self, **kwargs) -> Optional[int]:
        return self.result.convergence_iteration(**kwargs)


@dataclass
class IntelligentPipelineResult:
    """Everything §IX reports for intelligent partitioning."""

    segmentation: SegmentationResult
    partitions: List[PartitionRunReport]
    circles: List[Circle] = field(default_factory=list)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def longest_partition_seconds(self) -> float:
        """Runtime with one processor per partition: the slowest one
        ("the intelligent-partitioning program runtime is the longest
        time taken to process any of the partitions")."""
        return max((p.runtime_seconds for p in self.partitions), default=0.0)

    def runtime_with_processors(self, n_processors: int) -> float:
        """Runtime with load balancing onto *n_processors* (§IX's
        two-processor discussion): the LPT makespan of the partition
        runtimes."""
        costs = [p.runtime_seconds for p in self.partitions]
        return makespan(costs, n_processors) if costs else 0.0


def run_intelligent_pipeline(
    image: Image,
    spec: ModelSpec,
    move_config: MoveConfig,
    iterations_per_partition: int,
    theta: float = 0.5,
    min_gap: float = 8.0,
    pad: float = 3.0,
    trim: bool = False,
    executor: Optional[Executor] = None,
    seed: SeedLike = None,
    whole_image_count: Optional[float] = None,
    record_every: int = 50,
) -> IntelligentPipelineResult:
    """Run the full intelligent-partitioning pipeline on *image*.

    Parameters
    ----------
    iterations_per_partition:
        Chain length per partition.  Iterations to convergence is
        *measured* from the trace afterwards, as in Table I.
    theta:
        Threshold for both segmentation and eq. (5) estimates.
    whole_image_count:
        Prior knowledge of the total artifact count, used for the naive
        area-scaled estimate column; defaults to eq. (5) over the whole
        image.
    """
    binary = threshold_filter(image, theta)
    segmentation = segment_image(binary, min_gap=min_gap, pad=pad, trim=trim)
    if len(segmentation) == 0:
        raise PartitioningError(
            "segmentation produced no partitions (image empty at this threshold?)"
        )
    stream = coerce_stream(seed)
    total_area = image.bounds.area
    if whole_image_count is None:
        whole_image_count = estimate_count_in_rect(
            binary, image.bounds, theta=0.5, radius=spec.radius_mean
        )

    set_worker_image(image.pixels)  # serial/thread executors read this
    exec_ = executor or SerialExecutor()

    reports: List[PartitionRunReport] = []
    tasks = []
    for rect in segmentation.partitions:
        est_thresh = estimate_count_in_rect(
            binary, rect, theta=0.5, radius=spec.radius_mean
        )
        est_density = estimate_count_by_area(whole_image_count, rect, bounds=image.bounds)
        reports.append(
            PartitionRunReport(
                rect=rect,
                area=rect.area,
                relative_area=rect.area / total_area,
                est_count_threshold=est_thresh,
                est_count_density=est_density,
            )
        )
        tasks.append(
            make_subimage_task(
                rect,
                spec,
                move_config,
                expected_count=est_thresh,
                iterations=iterations_per_partition,
                seed=int(stream.rng.integers(0, 2**63 - 1)),
                record_every=record_every,
            )
        )

    results = exec_.map(run_subimage_task, tasks)
    for report, result in zip(reports, results):
        report.result = result

    circles = concat_models([r.circles for r in results])
    return IntelligentPipelineResult(
        segmentation=segmentation, partitions=reports, circles=circles
    )
