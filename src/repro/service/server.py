"""The asyncio detection service.

One process, three moving parts:

* a TCP protocol loop (:meth:`DetectionService._handle_connection`)
  speaking the JSON-lines protocol of :mod:`repro.service.protocol`;
* a bounded priority :class:`~repro.service.queue.JobQueue` with
  reject-with-retry-after backpressure;
* ``workers`` worker coroutines, each draining the queue and running
  jobs on a thread pool via the engine's streaming path
  (:func:`repro.engine.run_stream`) — every tile-planned / partition
  fragment event is forwarded to the job's subscribers the moment the
  engine produces it, so clients watch detections accumulate instead of
  waiting for the merge.

Cache integration: submissions are content-addressed
(:func:`repro.engine.schema.request_key`) and consulted against the
optional :class:`~repro.engine.cache.ResultCache` *before* queueing — a
hit completes the job instantly without occupying a queue slot or a
worker; misses publish their merged result back into the cache.

Threading: the event loop owns all job/queue state.  Engine work runs on
a thread pool sized to ``workers``; the only loop-state touches from
those threads go through ``loop.call_soon_threadsafe``, and the only
thread-state read from job control is the monotonic
``Job.cancel_requested`` flag (checked between engine events, so a
cancel lands at the next fragment boundary).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, Optional, Tuple

from repro.engine import run_stream
from repro.engine.cache import ResultCache, result_to_json
from repro.engine.schema import ResultEvent, request_key
from repro.errors import (
    DeadlineExceededError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_registry,
    mark_trace,
    recent_spans,
    record_span,
    remote_parent,
    render_json,
    trace as trace_block,
    trace_spans,
)
from repro.service.jobs import Job, JobState
from repro.service.protocol import (
    MAX_LINE_BYTES,
    TERMINAL_EVENTS,
    decode_line,
    encode_line,
    error_reply,
    event_to_wire,
    request_from_wire,
)
from repro.service.queue import JobQueue

__all__ = [
    "DetectionService",
    "LoopHandle",
    "ServiceHandle",
    "run_background_loop",
    "serve_background",
    "serve_forever",
]

#: JobState → job-log completion state.
_STATE_TO_LOG = {
    JobState.DONE: "done",
    JobState.FAILED: "failed",
    JobState.CANCELLED: "cancelled",
}

#: Terminal jobs retained for status/stream replay before the oldest
#: are forgotten (a long-lived server must not accumulate every job ever).
DEFAULT_JOB_RETENTION = 1024


class _JobCancelled(Exception):
    """Internal: a worker thread observed the job's cancel flag."""


class DetectionService:
    """Async detection service over the unified engine.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    workers:
        Engine worker slots — concurrent jobs.  ``0`` accepts and queues
        but never dispatches (deterministic queue-state testing).
    queue_size:
        Max jobs admitted but not yet dispatched; submissions beyond it
        are rejected with a ``retry_after`` hint.
    cache:
        Optional :class:`ResultCache` consulted before dispatch and
        published to after merge.
    executor:
        Optional executor-choice override (``serial``/``thread``/
        ``process``/``auto``) forced onto every dispatched request —
        the service owns parallelism policy, not its clients.
    job_log:
        Optional durable job log (a :class:`~repro.cluster.joblog.JobLog`
        or a path): every queued submission is recorded and every
        terminal transition completes it, so a restarted service with
        the same log re-admits the jobs that were pending — under their
        original job ids, so clients' handles survive the restart.
    quota:
        Optional per-client :class:`~repro.cluster.quota.QuotaPolicy`;
        over-limit submits are rejected with the retry-after shape.
    node_id:
        Stable identity reported in :meth:`stats` (cluster routers read
        it); defaults to a fresh ``svc-…`` id per process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_size: int = 16,
        cache: Optional[ResultCache] = None,
        executor: Optional[str] = None,
        job_retention: int = DEFAULT_JOB_RETENTION,
        job_log: Any = None,
        quota: Any = None,
        node_id: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache = cache
        self.executor = executor
        self.job_retention = max(1, job_retention)
        if isinstance(job_log, (str, os.PathLike)):
            # Lazy import: repro.cluster imports repro.service at module
            # scope; this direction must resolve at call time only.
            from repro.cluster.joblog import JobLog

            job_log = JobLog(job_log)
        self.job_log = job_log
        self.quota = quota
        self.node_id = node_id or f"svc-{uuid.uuid4().hex[:8]}"
        #: Fault-injection hook (chaos harness): seconds of artificial
        #: latency added before every request/reply answer.  Pushing it
        #: past a router's probe timeout simulates a slow-but-alive
        #: node; 0.0 (the default) is a no-op.
        self.response_delay = 0.0
        self.started_at = time.monotonic()
        self.n_replayed = 0
        self._queue = JobQueue(max_pending=queue_size)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._worker_tasks: list = []
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-engine"
        )
        # Request parsing (base64 pixels, threshold scans, image hashing)
        # is O(pixels) numpy work: it runs here, never on the event loop,
        # and never behind long engine jobs in the worker pool.
        self._parse_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-parse"
        )
        self.n_submitted = 0
        self.n_dispatched = 0
        self.n_cache_hits = 0
        self.n_cache_misses = 0
        # Instance-private metrics registry: per-stage latency histograms
        # (the op:stats ``stage_latency`` doc is built from these — the
        # successor to the old bespoke ``StageLatencies`` class), live
        # queue gauges, and lifecycle counters.  Exposed via op:metrics
        # merged with the process-wide engine registry.
        self.obs = MetricsRegistry()
        self._stage_hist: "OrderedDict[str, Histogram]" = OrderedDict()
        self._stage_lock = threading.Lock()
        self.obs.gauge(
            "service_queue_depth",
            help="Jobs admitted but not yet dispatched.",
            fn=lambda: self._queue.depth,
        )
        self.obs.gauge(
            "service_queue_capacity",
            help="Queue admission limit.",
            fn=lambda: self._queue.max_pending,
        )
        if self.job_log is not None:
            self.obs.gauge(
                "service_wal_appends",
                help="Records appended to the durable job log.",
                fn=lambda: self.job_log.n_appended,
            )
            self.obs.gauge(
                "service_wal_compactions",
                help="Compaction passes on the durable job log.",
                fn=lambda: self.job_log.n_compactions,
            )

    # -- obs helpers -----------------------------------------------------------
    def _record_stage(self, stage: str, seconds: float) -> None:
        """Record one pipeline-stage duration (parse/queue_wait/run).

        The per-stage histograms live in :attr:`obs` under
        ``service_stage_seconds{stage=...}``; a side index keeps
        first-record order so the legacy ``stage_latency`` doc lists
        stages in the order they first ran, as the old class did.
        """
        with self._stage_lock:
            hist = self._stage_hist.get(stage)
            if hist is None:
                hist = self.obs.histogram(
                    "service_stage_seconds",
                    help="Pipeline stage durations (parse/queue_wait/run).",
                    stage=stage,
                )
                self._stage_hist[stage] = hist
        hist.observe(seconds)

    def _count_submission(self, outcome: str) -> None:
        self.obs.counter(
            "service_submissions_total",
            help="Job submissions, by admission outcome.",
            outcome=outcome,
        ).inc()

    def _stage_latency_doc(self) -> Dict[str, Dict[str, float]]:
        doc: Dict[str, Dict[str, float]] = {}
        with self._stage_lock:
            stages = list(self._stage_hist.items())
        for stage, hist in stages:
            snap = hist.snapshot()
            if snap:
                doc[stage] = snap
        return doc

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.started_at = time.monotonic()
        if self.job_log is not None:
            await self._replay_pending()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"repro-worker-{i}")
            for i in range(self.workers)
        ]

    async def _replay_pending(self) -> None:
        """Re-admit the job log's pending submissions (restart path).

        Original job ids are preserved, so a client holding a pre-restart
        id can still status/stream its job.  Specs that no longer parse
        are completed as failed; jobs the queue cannot admit stay pending
        in the log for the next restart.
        """
        loop = asyncio.get_running_loop()
        for pending in self.job_log.replay().pending.values():
            if pending.job_id in self._jobs:
                continue
            try:
                request, key = await loop.run_in_executor(
                    self._parse_pool, self._parse_spec, pending.spec
                )
            except ServiceError:
                self.job_log.log_complete(pending.job_id, "failed")
                continue
            try:
                self.admit(
                    request, key, pending.priority,
                    job_id=pending.job_id, already_logged=True,
                )
            except QueueFullError:
                continue  # still pending; the next restart retries
            self.n_replayed += 1

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("service is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._worker_tasks = []
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Sever live connections too: a stopped service must look dead
        # to its peers *now* — a cluster router streaming a job from a
        # killed in-process backend relies on this EOF to fail over.
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        await asyncio.sleep(0)  # let connection_lost callbacks run
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._parse_pool.shutdown(wait=False, cancel_futures=True)
        if self.cache is not None:
            self.cache.flush()
        if self.job_log is not None:
            self.job_log.close()

    # -- job control (loop thread) ---------------------------------------------
    def _parse_spec(self, spec: Dict[str, Any]):
        """Spec → (request, key).  O(pixels); runs on the parse thread."""
        parse_started = time.monotonic()
        request = request_from_wire(spec)
        key = request_key(request)
        self._record_stage("parse", time.monotonic() - parse_started)
        return request, key

    def _check_quota(self, client: Optional[str]) -> None:
        if self.quota is None:
            return
        try:
            self.quota.check(client)  # raises QuotaExceededError
        except ServiceError:
            self.obs.counter(
                "service_quota_rejections_total",
                help="Submissions rejected by per-client quota.",
            ).inc()
            raise

    def submit(self, spec: Dict[str, Any], priority: int = 0,
               timeout: float = 30.0, client: Optional[str] = None) -> Dict[str, Any]:
        """Parse and admit one job spec — the blocking embedding API.

        Loop state (queue, registry, subscriber fan-out) is only touched
        on the loop thread: called from any other thread (e.g. against a
        :func:`serve_background` handle), admission is marshalled over
        with ``run_coroutine_threadsafe`` — a bare ``put_nowait`` from a
        foreign thread would enqueue without waking the loop, leaving
        the job queued forever.  The protocol loop itself parses on the
        parse thread via :meth:`_submit_async` instead.
        """
        self._check_quota(client)
        request, key = self._parse_spec(spec)
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is not loop:
                return asyncio.run_coroutine_threadsafe(
                    self._admit_on_loop(request, key, priority, spec, client), loop
                ).result(timeout=timeout)
        return self.admit(request, key, priority, spec=spec, client=client)

    async def _admit_on_loop(self, request, key, priority: int,
                             spec=None, client=None) -> Dict[str, Any]:
        return self.admit(request, key, priority, spec=spec, client=client)

    async def _submit_async(
        self, msg: Dict[str, Any], peer: Optional[str] = None
    ) -> Dict[str, Any]:
        client = msg.get("client") or peer
        self._check_quota(client)
        loop = asyncio.get_running_loop()
        request, key = await loop.run_in_executor(
            self._parse_pool, self._parse_spec, msg.get("job")
        )
        return self.admit(request, key, msg.get("priority", 0),
                          spec=msg.get("job"), client=client,
                          deadline=msg.get("deadline"),
                          trace_id=msg.get("trace"))

    def admit(
        self,
        request,
        key,
        priority: int = 0,
        spec: Optional[Dict[str, Any]] = None,
        client: Optional[str] = None,
        job_id: Optional[str] = None,
        already_logged: bool = False,
        deadline: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Admit a parsed request; returns the wire reply.

        Raises :class:`QueueFullError` (backpressure) and
        :class:`ServiceError` (bad priority) for the handler to map
        onto error replies.  When a job log is configured and *spec* is
        given, queued admissions are recorded for restart replay (cache
        hits are not — they are already complete); *job_id* /
        *already_logged* are the replay path re-admitting a logged job
        under its original identity.  *deadline* (seconds of client
        budget left, from the wire) arms work-shedding: a queued job
        whose budget expires before a worker reaches it fails with
        ``deadline-exceeded`` instead of burning chains for a client
        that already gave up.  *trace_id* parents the run's engine
        spans under the submitter's span.
        """
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(f"priority must be an integer, got {priority!r}")
        job = Job(request=request, key=key, priority=priority)
        if job_id is not None:
            job.id = job_id
        job.logged = already_logged and self.job_log is not None
        if isinstance(deadline, (int, float)) and not isinstance(deadline, bool):
            job.deadline_at = time.monotonic() + max(0.0, float(deadline))
        if isinstance(trace_id, str) and trace_id:
            job.trace_id = trace_id

        hit = self.cache.get(key) if (self.cache is not None and key) else None
        if self.cache is not None and key:
            self.obs.counter(
                "service_cache_lookups_total",
                help="Admission-time result-cache lookups, by outcome.",
                result="hit" if hit is not None else "miss",
            ).inc()
        if self.cache is not None and key and hit is None:
            self.n_cache_misses += 1
        if hit is not None:
            self.n_cache_hits += 1
            self.n_submitted += 1
            self._count_submission("cache_hit")
            job.cached = True
            job.result = hit
            job.started_at = time.monotonic()
            self._finish(job, JobState.DONE,
                         {"event": "result", "cached": True,
                          "result": result_to_json(hit)})
            self._register(job)
            return {"ok": True, "job_id": job.id, "cached": True, "state": job.state.value}

        try:
            self._queue.put(job)  # raises QueueFullError when at capacity
        except QueueFullError:
            self._count_submission("queue_full")
            raise
        if self.job_log is not None and spec is not None and not job.logged:
            self.job_log.log_submit(
                job.id, spec, key=key, client=client, priority=priority
            )
            job.logged = True
        self.n_submitted += 1
        self._count_submission("queued")
        job.publish({"event": "state", "state": JobState.QUEUED.value})
        self._register(job)
        return {
            "ok": True,
            "job_id": job.id,
            "cached": False,
            "state": job.state.value,
            "queue_depth": self._queue.depth,
        }

    def cancel(self, job_id: str) -> Dict[str, Any]:
        job = self._job(job_id)
        if job.terminal:
            return {"ok": True, "job_id": job.id, "state": job.state.value,
                    "cancelled": job.state is JobState.CANCELLED}
        if job.state is JobState.QUEUED and self._queue.discard(job):
            self._finish(job, JobState.CANCELLED, {"event": "cancelled"})
            return {"ok": True, "job_id": job.id, "state": job.state.value, "cancelled": True}
        # Running: cooperative — the worker thread stops at the next
        # engine event boundary.
        job.cancel_requested = True
        return {"ok": True, "job_id": job.id, "state": job.state.value,
                "cancelled": False, "cancel_requested": True}

    def status(self, job_id: str) -> Dict[str, Any]:
        return {"ok": True, **self._job(job_id).status()}

    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        doc: Dict[str, Any] = {
            "role": "service",
            "node_id": self.node_id,
            "uptime_seconds": time.monotonic() - self.started_at,
            "queue_depth": self._queue.depth,
            "queue_capacity": self._queue.max_pending,
            "workers": self.workers,
            "jobs": states,
            "n_submitted": self.n_submitted,
            "n_dispatched": self.n_dispatched,
            "n_cache_hits": self.n_cache_hits,
            "n_cache_misses": self.n_cache_misses,
            "cache_hit_rate": (
                self.n_cache_hits / (self.n_cache_hits + self.n_cache_misses)
                if (self.n_cache_hits + self.n_cache_misses) else None
            ),
            "n_rejected": self._queue.n_rejected,
            "n_replayed": self.n_replayed,
            "stage_latency": self._stage_latency_doc(),
            "cache": self.cache.summary() if self.cache is not None else None,
        }
        if self.quota is not None:
            doc["quota"] = self.quota.snapshot()
        if self.job_log is not None:
            # Cheap fields only: stats is the health-probe op, polled
            # every probe interval — no full log scan here.
            doc["job_log"] = {
                "path": str(self.job_log.path),
                "n_appended": self.job_log.n_appended,
                "n_compactions": self.job_log.n_compactions,
            }
        return doc

    def metrics(self, include_spans: bool = False) -> Dict[str, Any]:
        """The ``op:metrics`` document: this instance's registry merged
        with the process-wide engine registry, as exposition JSON."""
        doc: Dict[str, Any] = {
            "ok": True,
            "role": "service",
            "node_id": self.node_id,
            "metrics": render_json(self.obs, get_registry()),
        }
        if include_spans:
            doc["spans"] = recent_spans(64)
        return doc

    def trace_doc(self, trace_id: Any = None,
                  job_id: Any = None) -> Dict[str, Any]:
        """The ``op:trace`` document: this process's buffered spans for
        one trace, plus a wall-clock sample for skew estimation.

        The router calls this on every backend a job touched and
        merges the replies under its own submit span; *trace_id* is
        the router's submit span id (the key the backend buffered
        under, via :func:`repro.obs.remote_parent`).  A local *job_id*
        resolves through the job table instead.
        """
        if not trace_id and job_id is not None:
            trace_id = self._job(job_id).trace_id
        spans = trace_spans(str(trace_id)) if trace_id else []
        return {
            "ok": True,
            "role": "service",
            "node_id": self.node_id,
            "trace": trace_id,
            "spans": spans,
            "now": time.time(),
        }

    def _job(self, job_id: Any) -> Job:
        job = self._jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.job_retention:
            # Forget the oldest *terminal* job; never drop live ones.
            for jid, old in self._jobs.items():
                if old.terminal:
                    del self._jobs[jid]
                    break
            else:
                break

    def _finish(self, job: Job, state: JobState, event: Dict[str, Any]) -> None:
        job.state = state
        job.finished_at = time.monotonic()
        if state is JobState.FAILED:
            # Tail sampling: errored / deadline-shed traces are always
            # retained, so the buffer still holds them when an operator
            # asks for the trace after the fact.
            mark_trace(job.trace_id, error=True,
                       deadline=bool(event.get("deadline_exceeded")))
        self.obs.counter(
            "service_jobs_total",
            help="Jobs reaching a terminal state, by outcome.",
            state=state.value,
        ).inc()
        if self.job_log is not None and job.logged:
            self.job_log.log_complete(job.id, _STATE_TO_LOG[state])
        # Terminal jobs live on only for status/replay: drop the request
        # (which pins the image pixels) and the strategy's raw detail
        # object, so retention holds wire documents — not images.
        job.request = None
        if job.result is not None and job.result.raw is not None:
            job.result = replace(job.result, raw=None)
        job.publish(event)

    # -- worker side -----------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job.terminal:
                continue
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED, {"event": "cancelled"})
                continue
            if job.deadline_at is not None and time.monotonic() >= job.deadline_at:
                # The client's propagated deadline expired while the job
                # sat queued: shed it — running chains for a caller that
                # already gave up wastes a worker slot.
                self.obs.counter(
                    "service_deadline_shed_total",
                    help="Queued jobs shed because their wire deadline expired.",
                ).inc()
                job.error = (
                    f"DeadlineExceededError: job {job.id} shed — "
                    "deadline expired before dispatch"
                )
                self._finish(job, JobState.FAILED,
                             {"event": "error", "error": job.error,
                              "deadline_exceeded": True})
                continue
            job.state = JobState.RUNNING
            job.started_at = time.monotonic()
            self._record_stage(
                "queue_wait", job.started_at - job.submitted_at
            )
            # Queue wait as a real span so assembled traces show the
            # time a job sat admitted-but-undispatched.
            with remote_parent(job.trace_id):
                record_span("service.queue_wait",
                            job.started_at - job.submitted_at,
                            registry=self.obs,
                            histogram_labels={"node": self.node_id},
                            job=job.id, node=self.node_id)
            job.publish({"event": "state", "state": JobState.RUNNING.value})
            self.n_dispatched += 1
            try:
                result = await loop.run_in_executor(
                    self._pool, self._run_job, job, loop
                )
            except _JobCancelled:
                self._finish(job, JobState.CANCELLED, {"event": "cancelled"})
            except Exception as exc:  # engine failure must not kill the worker
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job, JobState.FAILED,
                             {"event": "error", "error": job.error})
            else:
                job.result = result
                if self.cache is not None and job.key:
                    self.cache.put(job.key, result)
                elapsed = time.monotonic() - job.started_at
                self._queue.record_duration(elapsed)
                self._record_stage("run", elapsed)
                self._finish(job, JobState.DONE,
                             {"event": "result", "cached": False,
                              "result": result_to_json(result)})

    def _run_job(self, job: Job, loop: asyncio.AbstractEventLoop):
        """Engine-thread body: stream the run, forward events to the loop.

        Every ``call_soon_threadsafe`` here is enqueued before this
        function returns, and the worker coroutine resumes only after
        the executor future's own loop callback — so subscribers always
        see fragments before the terminal event.
        """
        from repro.parallel.sharedmem import clear_worker_image

        request = job.request
        if self.executor is not None:
            request = replace(request, executor=self.executor)
        result = None
        # Engine spans recorded on this thread (engine.run_stream etc.)
        # parent under the submitter's wire-propagated span, so a
        # cluster scrape shows backend work nested under the router's
        # submit span.  The contextvar set here is thread-local to this
        # executor thread for the duration of the run.
        with remote_parent(job.trace_id), \
                trace_block("service.run", registry=self.obs,
                            node=self.node_id):
            gen = run_stream(request)
            try:
                for event in gen:
                    if job.cancel_requested:
                        raise _JobCancelled()
                    if isinstance(event, ResultEvent):
                        result = event.result
                    else:
                        try:
                            loop.call_soon_threadsafe(
                                job.publish, event_to_wire(event)
                            )
                        except RuntimeError:
                            # Loop shut down mid-job (service killed):
                            # stop the orphaned engine thread quietly.
                            raise _JobCancelled() from None
            finally:
                gen.close()  # tears down the AsyncExecutor on early exit
                clear_worker_image()  # don't pin the image in the thread
        if result is None:  # pragma: no cover - run_stream always terminates
            raise ServiceError("engine stream ended without a result")
        return result

    # -- protocol loop ---------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else None
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:  # line over MAX_LINE_BYTES
                    writer.write(encode_line(
                        {"ok": False, "error": "bad-request",
                         "message": "protocol line too long"}))
                    await writer.drain()
                    break
                if not line.strip():
                    if not line:
                        break  # EOF
                    continue
                try:
                    msg = decode_line(line)
                    op = msg.get("op")
                    if op == "stream":
                        await self._stream_job(msg.get("job_id"), writer)
                        continue
                    if op == "submit":
                        reply = await self._submit_async(msg, peer)
                    else:
                        reply = self._dispatch_op(op, msg)
                except ServiceError as exc:
                    reply = error_reply(exc)
                if self.response_delay > 0:
                    await asyncio.sleep(self.response_delay)
                writer.write(encode_line(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _dispatch_op(self, op: Any, msg: Dict[str, Any]) -> Dict[str, Any]:
        if op == "status":
            return self.status(msg.get("job_id"))
        if op == "cancel":
            return self.cancel(msg.get("job_id"))
        if op == "stats":
            return {"ok": True, **self.stats()}
        if op == "metrics":
            return self.metrics(include_spans=bool(msg.get("spans")))
        if op == "trace":
            return self.trace_doc(trace_id=msg.get("trace"),
                                  job_id=msg.get("job_id"))
        if op == "ping":
            return {"ok": True, "pong": True}
        raise ServiceError(f"unknown op {op!r}")

    async def job_events(self, job_id: Any):
        """All of one job's stream documents, ack first: replay the
        job's history, then follow live until a terminal event.

        The single stream implementation behind both transports — the
        TCP ``op: stream`` proxy writes each yielded document as a
        JSON line, the HTTP gateway frames the *same* documents as SSE
        ``data:`` payloads — which is what keeps the two byte-identical.
        Raises :class:`JobNotFoundError` before the first yield for an
        unknown id, so consumers can still choose their error framing.
        """
        job = self._job(job_id)
        events = job.subscribe()
        try:
            yield {"ok": True, "job_id": job.id, "state": job.state.value,
                   "trace": job.trace_id}
            while True:
                event = await events.get()
                yield event
                if event.get("event") in TERMINAL_EVENTS:
                    break
        finally:
            job.unsubscribe(events)

    async def _stream_job(self, job_id: Any, writer: asyncio.StreamWriter) -> None:
        """``op: stream`` — proxy :meth:`job_events` onto the wire; the
        connection then returns to the request/reply loop."""
        events = self.job_events(job_id)
        try:
            async for doc in events:
                writer.write(encode_line(doc))
                await writer.drain()
        finally:
            await events.aclose()


# -- embedding helpers ---------------------------------------------------------

class LoopHandle:
    """A server object running on a private event loop in a daemon
    thread.  The object must expose an ``address`` property and an
    ``async stop()``; subclasses add a named attribute for it.  Shared
    by the service's :class:`ServiceHandle` and the cluster router's
    :class:`~repro.cluster.router.RouterHandle`.
    """

    def __init__(self, obj: Any, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self._obj = obj
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> Tuple[str, int]:
        future = asyncio.run_coroutine_threadsafe(self._address(), self._loop)
        return future.result(timeout=5)

    async def _address(self) -> Tuple[str, int]:
        return self._obj.address

    def stop(self, timeout: float = 10.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        asyncio.run_coroutine_threadsafe(
            self._obj.stop(), self._loop
        ).result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "LoopHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class ServiceHandle(LoopHandle):
    """A service running on a private event loop in a daemon thread.

    The bridge tests / benchmarks / notebooks use: start with
    :func:`serve_background`, talk to ``handle.address`` with a
    :class:`~repro.service.client.ServiceClient`, then :meth:`stop`.
    """

    def __init__(self, service: DetectionService,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        super().__init__(service, loop, thread)
        self.service = service


def run_background_loop(factory, thread_name: str, error_cls, what: str):
    """Construct ``obj = factory()``, await ``obj.start()`` on a fresh
    event loop in a daemon thread, and return ``(obj, loop, thread)``
    once start completes (socket bound, replay registered).  The one
    background-runner implementation behind :func:`serve_background`
    and the router's ``router_background``."""
    started = threading.Event()
    box: Dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            obj = factory()
            loop.run_until_complete(obj.start())
        except BaseException as exc:  # surface bind/config errors
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["obj"] = obj
        box["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            # Unwind lingering handler tasks (open connections at stop
            # time) so nothing dies noisily at GC with a closed loop;
            # teardown-window callbacks (asyncio's stream protocol reads
            # .exception() off cancelled tasks) are deliberately quiet.
            loop.set_exception_handler(lambda _loop, _ctx: None)
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=runner, name=thread_name, daemon=True)
    thread.start()
    if not started.wait(timeout=15):
        raise error_cls(f"{what} failed to start within 15s")
    if "error" in box:
        raise error_cls(f"{what} failed to start: {box['error']}")
    return box["obj"], box["loop"], thread


def serve_background(**kwargs: Any) -> ServiceHandle:
    """Start a :class:`DetectionService` on a fresh loop in a daemon
    thread; returns once the socket is bound."""
    service, loop, thread = run_background_loop(
        lambda: DetectionService(**kwargs), "repro-service",
        ServiceError, "detection service",
    )
    return ServiceHandle(service, loop, thread)


def serve_forever(**kwargs: Any) -> None:
    """Run a service in the foreground until interrupted (the CLI path)."""

    async def main() -> None:
        service = DetectionService(**kwargs)
        await service.start()
        host, port = service.address
        # flush: cluster harnesses parse this line to learn the port.
        print(f"repro service listening on {host}:{port} "
              f"({service.workers} workers, queue {service._queue.max_pending}"
              f"{', cached' if service.cache is not None else ''}"
              f"{', durable' if service.job_log is not None else ''})",
              flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("service stopped")
