"""repro.service — the async detection service.

The layer that turns the engine library into a server: submissions go
onto a bounded priority job queue, a worker pool drains it through the
engine's streaming path, and clients watch per-partition result
fragments arrive over a JSON-lines TCP protocol instead of blocking on
run-to-completion calls::

    # server (or `repro serve --port 7341 --workers 4 --cache`)
    from repro.service import serve_background
    handle = serve_background(workers=2, queue_size=8)

    # client (or `repro detect --server HOST:PORT`)
    from repro.service import ServiceClient, scene_job
    with ServiceClient(*handle.address) as client:
        out = client.detect(scene_job(size=64, circles=4, iterations=800))
        print(len(out.fragments), "fragments,", len(out.circles), "circles")
    handle.stop()

The pieces:

* :mod:`~repro.service.jobs` — job identity, state machine, event log,
  subscriber fan-out;
* :mod:`~repro.service.queue` — bounded priority admission with
  reject-with-retry-after backpressure;
* :mod:`~repro.service.protocol` — the wire schema (submit / status /
  cancel / stream / stats) and job-spec → request construction;
* :mod:`~repro.service.server` — the asyncio TCP server and worker
  pool over :func:`repro.engine.run_stream`, with
  :class:`~repro.engine.cache.ResultCache` consult-before-dispatch /
  publish-after-merge;
* :mod:`~repro.service.client` — the blocking stdlib client the CLI,
  tests, and benchmarks use.

Determinism carries through: a job's streamed fragments and merged
result are bit-identical to a direct :func:`repro.engine.run` of the
same request, so the service is a transport, never a source of
numerical drift.
"""

from repro.service.client import ServiceClient, StreamedDetection
from repro.service.jobs import Job, JobState, TERMINAL_STATES
from repro.service.policy import RetryPolicy, RetryState
from repro.service.protocol import (
    event_to_wire,
    pgm_job,
    pixels_job,
    request_from_wire,
    scene_job,
)
from repro.service.queue import JobQueue
from repro.service.server import (
    DetectionService,
    ServiceHandle,
    serve_background,
    serve_forever,
)

__all__ = [
    "DetectionService",
    "ServiceHandle",
    "serve_background",
    "serve_forever",
    "ServiceClient",
    "StreamedDetection",
    "RetryPolicy",
    "RetryState",
    "Job",
    "JobState",
    "TERMINAL_STATES",
    "JobQueue",
    "scene_job",
    "pgm_job",
    "pixels_job",
    "request_from_wire",
    "event_to_wire",
]
