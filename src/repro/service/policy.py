"""The unified retry/deadline policy behind every bounded retry loop.

Before this module each retry site hand-rolled its own constants —
``ServiceClient`` slept ``reconnect_backoff * 2**attempt``, ``submit``
slept the server's raw ``retry_after``, the router's replay dispatcher
gave up silently, and the pool re-probed dead nodes on a fixed cadence
forever.  :class:`RetryPolicy` replaces all of them with one shape:

* **exponential backoff with decorrelated jitter** (the AWS
  architecture-blog variant: each delay is drawn uniformly from
  ``[base, 3 * previous]``, capped) so synchronized clients spread out
  instead of thundering back in lockstep;
* **honored ``Retry-After``** — a server backpressure hint is
  authoritative and replaces the computed backoff verbatim (the server
  knows when capacity frees; jittering past it only adds latency,
  retrying sooner hammers the queue);
* **an overall deadline** — when sleeping the next delay cannot
  possibly leave time to succeed, the loop raises
  :class:`~repro.errors.DeadlineExceededError` *now* instead of
  sleeping into a wait that is already doomed;
* **a per-attempt timeout** bound to whichever is tighter: the
  policy's cap or the time left on the deadline.

The policy object is a frozen value; each retry loop calls
:meth:`RetryPolicy.start` for a private :class:`RetryState` carrying
the mutable attempt/deadline bookkeeping.  Clocks, RNG, and the sleep
functions are injectable so tests run deterministically without real
waiting.  Every computed delay lands in the process-global obs
registry (``retries_total`` / ``retry_backoff_seconds`` by ``op``), so
a metrics scrape shows where a deployment is burning time in backoff.

Deadlines also *propagate*: callers put ``RetryState.remaining()`` on
the wire (the ``deadline`` field of submit messages, the
``X-Repro-Deadline`` HTTP header) so a backend can shed work whose
client has already given up rather than burn chains on it.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

from repro.errors import DeadlineExceededError, ServiceError

__all__ = ["RetryPolicy", "RetryState"]

_UNSET = object()


@dataclass(frozen=True)
class RetryPolicy:
    """An immutable description of how a loop retries and when it stops.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included) before the triggering error
        is re-raised.  ``None`` retries forever (probe loops).
    base_delay, max_delay:
        Backoff bounds in seconds.
    multiplier:
        Growth factor for the deterministic (``jitter=False``) ladder:
        ``base_delay * multiplier**(n-1)``, capped at ``max_delay``.
    jitter:
        Decorrelated jitter — each delay drawn from
        ``uniform(base_delay, 3 * previous_delay)``, capped.  The
        default; disable only where tests need exact delays.
    attempt_timeout:
        Optional per-attempt cap in seconds (see
        :meth:`RetryState.attempt_timeout`).
    deadline:
        Optional overall budget in seconds, measured from
        :meth:`start`.  Overridable per call site via ``start()``.
    """

    max_attempts: Optional[int] = 4
    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: bool = True
    attempt_timeout: Optional[float] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ServiceError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}..{self.max_delay}"
            )
        if self.multiplier < 1.0:
            raise ServiceError(f"multiplier must be >= 1, got {self.multiplier}")

    def with_(self, **overrides: Any) -> "RetryPolicy":
        """A copy with *overrides* applied (``dataclasses.replace``)."""
        return replace(self, **overrides)

    def start(
        self,
        deadline: Any = _UNSET,
        op: str = "retry",
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "RetryState":
        """A fresh :class:`RetryState` for one logical operation.

        *deadline* (seconds from now) overrides the policy's own;
        *op* labels the obs counters; *clock*/*rng*/*sleep* are test
        injection points.
        """
        if deadline is _UNSET:
            deadline = self.deadline
        return RetryState(self, deadline=deadline, op=op,
                          clock=clock, rng=rng, sleep=sleep)


class RetryState:
    """Mutable per-operation companion of a :class:`RetryPolicy`."""

    def __init__(
        self,
        policy: RetryPolicy,
        deadline: Optional[float],
        op: str,
        clock: Callable[[], float],
        rng: Optional[random.Random],
        sleep: Callable[[float], None],
    ) -> None:
        self.policy = policy
        self.op = op
        self._clock = clock
        self._rng = rng if rng is not None else random
        self._sleep = sleep
        self.started = clock()
        self.deadline = deadline
        self.deadline_at = None if deadline is None else self.started + deadline
        self.n_failures = 0
        self.last_delay: Optional[float] = None

    # -- deadline --------------------------------------------------------------
    def remaining(self) -> Optional[float]:
        """Seconds left on the overall deadline (``None``: no deadline)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self._clock()

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            raise DeadlineExceededError(
                f"{self.op}: deadline of {self.deadline:g}s exceeded "
                f"after {self.n_failures} failed attempt(s)"
            )

    def attempt_timeout(self, default: Optional[float] = None) -> Optional[float]:
        """The timeout this attempt should run under: the tightest of
        the policy's per-attempt cap, the deadline's remaining budget,
        and *default*.  Raises :class:`DeadlineExceededError` when the
        budget is already spent."""
        self.check_deadline()
        candidates = [t for t in (self.policy.attempt_timeout,
                                  self.remaining(), default) if t is not None]
        return min(candidates) if candidates else None

    # -- backoff ---------------------------------------------------------------
    def next_delay(self, retry_after: Optional[float] = None,
                   error: Optional[BaseException] = None) -> float:
        """Record a failed attempt and return how long to back off.

        Raises *error* (or :class:`ServiceError`) once attempts are
        exhausted, and :class:`DeadlineExceededError` when the delay
        cannot fit in the remaining deadline — a retry that starts
        after the deadline can never be useful, so the caller learns
        *now*.  Does not sleep: probe schedulers use the raw delay;
        blocking/async loops use :meth:`sleep` / :meth:`asleep`.
        """
        self.n_failures += 1
        limit = self.policy.max_attempts
        if limit is not None and self.n_failures >= limit:
            if error is not None:
                raise error
            raise ServiceError(
                f"{self.op}: retry attempts exhausted ({limit})"
            )
        if retry_after is not None:
            delay = max(0.0, float(retry_after))
        elif self.policy.jitter:
            previous = self.last_delay if self.last_delay else self.policy.base_delay
            delay = min(self.policy.max_delay,
                        self._rng.uniform(self.policy.base_delay, previous * 3.0))
        else:
            delay = min(self.policy.max_delay,
                        self.policy.base_delay
                        * self.policy.multiplier ** (self.n_failures - 1))
        remaining = self.remaining()
        if remaining is not None and delay >= remaining:
            exc = DeadlineExceededError(
                f"{self.op}: deadline of {self.deadline:g}s leaves "
                f"{max(0.0, remaining):.3f}s — not enough for a "
                f"{delay:.3f}s backoff (attempt {self.n_failures})"
            )
            if error is not None:
                raise exc from error
            raise exc
        self.last_delay = delay
        self._observe(delay)
        return delay

    def sleep(self, retry_after: Optional[float] = None,
              error: Optional[BaseException] = None) -> float:
        """Blocking backoff: :meth:`next_delay` then sleep it."""
        delay = self.next_delay(retry_after, error)
        if delay > 0:
            self._sleep(delay)
        return delay

    async def asleep(self, retry_after: Optional[float] = None,
                     error: Optional[BaseException] = None) -> float:
        """Async backoff: :meth:`next_delay` then ``asyncio.sleep``."""
        delay = self.next_delay(retry_after, error)
        if delay > 0:
            await asyncio.sleep(delay)
        return delay

    def _observe(self, delay: float) -> None:
        # Late import: policy is imported by the thin client, which must
        # stay importable without dragging the whole obs module graph in
        # at module import time (it is stdlib-only, but cycles bite).
        from repro.obs import get_registry

        registry = get_registry()
        registry.counter(
            "retries_total",
            help="Backoff retries taken, by logical operation.",
            op=self.op,
        ).inc()
        registry.histogram(
            "retry_backoff_seconds",
            help="Backoff delays slept before retrying, by operation.",
            op=self.op,
        ).observe(delay)
