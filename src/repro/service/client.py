"""Blocking, stdlib-only client for the detection service *and* cluster.

One persistent socket per client; every method is a request/reply pair
except :meth:`ServiceClient.stream`, which consumes event lines until a
terminal event.  The CLI (``repro detect --server``) and the service
tests/benchmarks are the callers; nothing here imports numpy or the
engine, so a thin consumer can talk to a heavy server.  A cluster
router speaks the identical protocol, so the same client works against
one service or a whole shard cluster without knowing which.

Two resilience contracts, both bounded:

* **Backpressure** — a queue-full or quota rejection carries the
  server's ``retry_after`` hint.  :meth:`submit` honours it
  automatically: it sleeps and retries up to ``submit_attempts`` times
  before surfacing :class:`~repro.errors.QueueFullError` /
  :class:`~repro.errors.QuotaExceededError` to the caller (pass
  ``max_attempts=1`` for the raw single-shot behaviour);
  :meth:`submit_wait` is the long-patience variant with an explicit
  time budget.
* **Node-down transparency** — a refused, reset, or mid-request-closed
  connection raises :class:`~repro.errors.ServiceUnavailableError`
  internally; the client reconnects and retries up to
  ``reconnect_attempts`` times.  Retries are bounded *and honest about
  idempotence*: a submit whose reply was lost mid-read is NOT replayed
  (the server may have admitted it; a blind replay could duplicate the
  job on a cache-less server) — it surfaces
  :class:`ServiceUnavailableError`, and callers with content-addressed
  jobs may safely resubmit, knowing the server collapses the repeat.
  Mid-\\ :meth:`stream` drops re-attach to the same job id — against a
  restarted cluster router this replays the job's history and follows
  it to completion on whichever backend now owns it.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    JobNotFoundError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.policy import RetryPolicy
from repro.service.protocol import TERMINAL_EVENTS

__all__ = ["ServiceClient", "StreamedDetection"]


@dataclass
class StreamedDetection:
    """Everything one streamed job produced, in arrival order."""

    job_id: str
    events: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None  #: result_to_json document
    cached: bool = False

    @property
    def fragments(self) -> List[Dict[str, Any]]:
        """The per-partition result events, as they streamed in."""
        return [e for e in self.events if e.get("event") == "partition"]

    @property
    def circles(self) -> List[Tuple[float, float, float]]:
        if self.result is None:
            raise ServiceError(f"job {self.job_id} has no result")
        return [tuple(c) for c in self.result["circles"]]


class ServiceClient:
    """A JSON-lines connection to one service or cluster router.

    Parameters
    ----------
    host, port:
        The server (or router) address.
    timeout:
        Per-request socket timeout; suspended while streaming.
    client_id:
        Optional self-declared identity sent with every submit — the
        key per-client quotas account against (servers fall back to the
        peer address when absent).
    submit_attempts:
        How many times :meth:`submit` tries against retry-after
        backpressure before surfacing the rejection.
    reconnect_attempts:
        How many reconnect-and-retry rounds a dropped connection gets
        before :class:`ServiceUnavailableError` reaches the caller.
        ``0`` disables transparent reconnection.
    deadline:
        Optional overall time budget (seconds) applied to every
        :meth:`submit`: propagated on the wire so the server can shed
        the job once it expires, and raised client-side as
        :class:`~repro.errors.DeadlineExceededError` instead of
        sleeping into a retry that cannot finish in time.
    retry_policy:
        Optional :class:`~repro.service.policy.RetryPolicy` override
        for the reconnect backoff.  The default is derived from the
        legacy ``reconnect_attempts``/``reconnect_backoff`` knobs
        (deterministic exponential ladder, no jitter) so existing
        callers keep their exact timing.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 120.0,
        client_id: Optional[str] = None,
        submit_attempts: int = 4,
        reconnect_attempts: int = 2,
        reconnect_backoff: float = 0.1,
        deadline: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if submit_attempts < 1:
            raise ServiceError(f"submit_attempts must be >= 1, got {submit_attempts}")
        if reconnect_attempts < 0:
            raise ServiceError(
                f"reconnect_attempts must be >= 0, got {reconnect_attempts}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        self.submit_attempts = submit_attempts
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.deadline = deadline
        self.reconnect_policy = retry_policy or RetryPolicy(
            max_attempts=1 + reconnect_attempts,
            base_delay=reconnect_backoff,
            max_delay=max(reconnect_backoff, 5.0),
            jitter=False,
        )
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection ------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise ServiceUnavailableError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire ------------------------------------------------------------------
    def _send(self, payload: Dict[str, Any]) -> None:
        self.connect()
        try:
            self._file.write(
                json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
            )
            self._file.flush()
        except OSError as exc:
            raise ServiceUnavailableError(
                f"connection to {self.host}:{self.port} lost while sending: {exc}"
            ) from exc

    def _read_line(self) -> Dict[str, Any]:
        try:
            line = self._file.readline()
        except OSError as exc:
            raise ServiceUnavailableError(
                f"connection to {self.host}:{self.port} lost while reading: {exc}"
            ) from exc
        if not line:
            raise ServiceUnavailableError("server closed the connection")
        try:
            obj = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(f"malformed server line: {exc}") from None
        return obj

    def _roundtrip(
        self, payload: Dict[str, Any], idempotent: bool = True
    ) -> Dict[str, Any]:
        """One send/receive with transparent bounded reconnection.

        Send-phase failures always reconnect and retry (the server never
        saw the request).  Reply-phase failures — the request may have
        been processed, only the answer was lost — retry only for
        *idempotent* ops: replaying a submit there could duplicate the
        job on a cache-less server, so non-idempotent ops surface
        :class:`ServiceUnavailableError` and let the caller decide
        (content-addressed jobs are safe to resubmit; the server
        collapses them).
        """
        retry = self.reconnect_policy.start(op="client.reconnect")
        while True:
            try:
                self._send(payload)
            except ServiceUnavailableError as exc:
                self.close()
                retry.sleep(error=exc)
                continue
            try:
                return self._read_line()
            except ServiceUnavailableError as exc:
                self.close()
                if not idempotent:
                    raise
                retry.sleep(error=exc)

    def _call(self, payload: Dict[str, Any],
              idempotent: bool = True) -> Dict[str, Any]:
        reply = self._roundtrip(payload, idempotent=idempotent)
        if reply.get("ok"):
            return reply
        error = reply.get("error")
        message = reply.get("message", error or "request failed")
        if error == "quota-exceeded":
            raise QuotaExceededError(
                message, retry_after=float(reply.get("retry_after", 1.0))
            )
        if error == "queue-full":
            raise QueueFullError(message, retry_after=float(reply.get("retry_after", 1.0)))
        if error == "unknown-job":
            raise JobNotFoundError(message)
        if error == "deadline-exceeded":
            raise DeadlineExceededError(message)
        raise ServiceError(message)

    # -- ops -------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def _submit_payload(self, job: Dict[str, Any], priority: int) -> Dict[str, Any]:
        payload = {"op": "submit", "job": job, "priority": priority}
        if self.client_id is not None:
            payload["client"] = self.client_id
        return payload

    def submit(
        self, job: Dict[str, Any], priority: int = 0,
        max_attempts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a job spec; returns the accept reply (``job_id`` etc.).

        Honours retry-after backpressure automatically: a queue-full or
        quota rejection sleeps the server's hint and retries, up to
        *max_attempts* (default: the client's ``submit_attempts``)
        before the :class:`QueueFullError` /
        :class:`QuotaExceededError` reaches the caller.  Pass
        ``max_attempts=1`` to surface the first rejection immediately.

        *deadline* (default: the client's) bounds the whole operation:
        the remaining budget rides on the wire as the submit message's
        ``deadline`` field (servers shed the job once it expires), and
        a retry that cannot fit in the budget raises
        :class:`~repro.errors.DeadlineExceededError` instead of
        sleeping.
        """
        attempts = self.submit_attempts if max_attempts is None else max_attempts
        if deadline is None:
            deadline = self.deadline
        retry = RetryPolicy(max_attempts=attempts).start(
            deadline=deadline, op="client.submit"
        )
        while True:
            retry.check_deadline()
            payload = self._submit_payload(job, priority)
            if retry.deadline_at is not None:
                payload["deadline"] = max(0.0, retry.remaining())
            try:
                return self._call(payload, idempotent=False)
            except QueueFullError as exc:  # QuotaExceededError included
                retry.sleep(retry_after=exc.retry_after, error=exc)

    def submit_wait(
        self, job: Dict[str, Any], priority: int = 0,
        max_attempts: int = 20, max_wait: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit with an explicit patience budget: sleep ``retry_after``
        between single-shot attempts until accepted, for up to
        *max_attempts* tries or *max_wait* seconds.  Exhausting the
        attempt budget re-raises the server's rejection; exhausting the
        *time* budget raises
        :class:`~repro.errors.DeadlineExceededError`."""
        retry = RetryPolicy(max_attempts=max_attempts).start(
            deadline=max_wait, op="client.submit_wait"
        )
        while True:
            try:
                return self.submit(job, priority=priority, max_attempts=1)
            except QueueFullError as exc:
                retry.sleep(retry_after=exc.retry_after, error=exc)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call({"op": "status", "job_id": job_id})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._call({"op": "cancel", "job_id": job_id})

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})

    def metrics(self, spans: bool = False) -> Dict[str, Any]:
        """The server's ``op:metrics`` exposition document (merged
        registries as JSON; *spans* adds the recent-span ring)."""
        payload: Dict[str, Any] = {"op": "metrics"}
        if spans:
            payload["spans"] = True
        return self._call(payload)

    def trace(self, job_id: Optional[str] = None,
              trace_id: Optional[str] = None) -> Dict[str, Any]:
        """The server's ``op:trace`` document for one job or trace id.

        Against a router this is the *assembled* cluster-wide trace —
        router spans plus every backend the job touched, node-labeled;
        against a plain service it is that process's buffered spans.
        """
        payload: Dict[str, Any] = {"op": "trace"}
        if job_id is not None:
            payload["job_id"] = job_id
        if trace_id is not None:
            payload["trace"] = trace_id
        return self._call(payload)

    def route(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Cluster-router introspection: where *would* this job land
        (``{"key": ..., "node": ...}``)?  Plain services reject the op."""
        return self._call({"op": "route", "job": job})

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's events — history first, then live — ending
        with the terminal event (``result``/``error``/``cancelled``).

        The socket timeout is suspended while waiting: a job sitting
        behind a deep queue may legitimately produce no event for longer
        than any request/reply timeout.

        A connection dropped mid-stream (node death, router restart) is
        re-attached transparently up to ``reconnect_attempts`` times by
        re-issuing the stream op for the same job id.  The server
        replays the job's event history on re-attach, so consumers may
        see duplicate planning/fragment events — the terminal event
        still arrives exactly once per successful stream.
        """
        retry = self.reconnect_policy.start(op="client.stream")
        while True:
            self._call({"op": "stream", "job_id": job_id})  # ack header
            previous = self._sock.gettimeout()
            self._sock.settimeout(None)
            try:
                while True:
                    event = self._read_line()
                    yield event
                    if event.get("event") in TERMINAL_EVENTS:
                        return
            except ServiceUnavailableError as exc:
                self.close()
                retry.sleep(error=exc)
            finally:
                if self._sock is not None:
                    try:
                        self._sock.settimeout(previous)
                    except OSError:  # pragma: no cover - connection gone
                        pass

    # -- conveniences ----------------------------------------------------------
    def detect(self, job: Dict[str, Any], priority: int = 0) -> StreamedDetection:
        """Submit (waiting out backpressure) and stream to completion."""
        reply = self.submit_wait(job, priority=priority)
        return self.collect(reply["job_id"])

    def collect(self, job_id: str) -> StreamedDetection:
        """Stream *job_id* to its terminal event and collate the output."""
        out = StreamedDetection(job_id=job_id)
        for event in self.stream(job_id):
            out.events.append(event)
            name = event.get("event")
            if name == "result":
                out.result = event["result"]
                out.cached = bool(event.get("cached"))
            elif name == "error":
                raise ServiceError(f"job {job_id} failed: {event.get('error')}")
            elif name == "cancelled":
                break
        return out
