"""Blocking, stdlib-only client for the detection service.

One persistent socket per client; every method is a request/reply pair
except :meth:`ServiceClient.stream`, which consumes event lines until a
terminal event.  The CLI (``repro detect --server``) and the service
tests/benchmarks are the callers; nothing here imports numpy or the
engine, so a thin consumer can talk to a heavy server.

Backpressure contract: :meth:`submit` raises
:class:`~repro.errors.QueueFullError` (carrying the server's
``retry_after``) when the queue rejects; :meth:`submit_wait` is the
polite loop that honours it.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import JobNotFoundError, QueueFullError, ServiceError
from repro.service.protocol import TERMINAL_EVENTS

__all__ = ["ServiceClient", "StreamedDetection"]


@dataclass
class StreamedDetection:
    """Everything one streamed job produced, in arrival order."""

    job_id: str
    events: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None  #: result_to_json document
    cached: bool = False

    @property
    def fragments(self) -> List[Dict[str, Any]]:
        """The per-partition result events, as they streamed in."""
        return [e for e in self.events if e.get("event") == "partition"]

    @property
    def circles(self) -> List[Tuple[float, float, float]]:
        if self.result is None:
            raise ServiceError(f"job {self.job_id} has no result")
        return [tuple(c) for c in self.result["circles"]]


class ServiceClient:
    """A JSON-lines connection to one :class:`DetectionService`."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection ------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire ------------------------------------------------------------------
    def _send(self, payload: Dict[str, Any]) -> None:
        self.connect()
        self._file.write(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")
        self._file.flush()

    def _read_line(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        try:
            obj = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise ServiceError(f"malformed server line: {exc}") from None
        return obj

    def _call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._send(payload)
        reply = self._read_line()
        if reply.get("ok"):
            return reply
        error = reply.get("error")
        message = reply.get("message", error or "request failed")
        if error == "queue-full":
            raise QueueFullError(message, retry_after=float(reply.get("retry_after", 1.0)))
        if error == "unknown-job":
            raise JobNotFoundError(message)
        raise ServiceError(message)

    # -- ops -------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def submit(self, job: Dict[str, Any], priority: int = 0) -> Dict[str, Any]:
        """Submit a job spec; returns the accept reply (``job_id`` etc.).

        Raises :class:`QueueFullError` when the server applies
        backpressure — catch it and wait ``exc.retry_after`` seconds,
        or use :meth:`submit_wait`.
        """
        return self._call({"op": "submit", "job": job, "priority": priority})

    def submit_wait(
        self, job: Dict[str, Any], priority: int = 0,
        max_attempts: int = 20, max_wait: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit, honouring backpressure: sleep ``retry_after`` between
        attempts until accepted or the patience budget runs out."""
        waited = 0.0
        for attempt in range(max_attempts):
            try:
                return self.submit(job, priority=priority)
            except QueueFullError as exc:
                if attempt + 1 >= max_attempts or waited >= max_wait:
                    raise
                pause = min(exc.retry_after, max_wait - waited)
                time.sleep(pause)
                waited += pause
        raise ServiceError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call({"op": "status", "job_id": job_id})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._call({"op": "cancel", "job_id": job_id})

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's events — history first, then live — ending
        with the terminal event (``result``/``error``/``cancelled``).

        The socket timeout is suspended while waiting: a job sitting
        behind a deep queue may legitimately produce no event for longer
        than any request/reply timeout.
        """
        self._call({"op": "stream", "job_id": job_id})  # ack header
        previous = self._sock.gettimeout()
        self._sock.settimeout(None)
        try:
            while True:
                event = self._read_line()
                yield event
                if event.get("event") in TERMINAL_EVENTS:
                    return
        finally:
            try:
                self._sock.settimeout(previous)
            except OSError:  # pragma: no cover - connection already gone
                pass

    # -- conveniences ----------------------------------------------------------
    def detect(self, job: Dict[str, Any], priority: int = 0) -> StreamedDetection:
        """Submit (waiting out backpressure) and stream to completion."""
        reply = self.submit_wait(job, priority=priority)
        return self.collect(reply["job_id"])

    def collect(self, job_id: str) -> StreamedDetection:
        """Stream *job_id* to its terminal event and collate the output."""
        out = StreamedDetection(job_id=job_id)
        for event in self.stream(job_id):
            out.events.append(event)
            name = event.get("event")
            if name == "result":
                out.result = event["result"]
                out.cached = bool(event.get("cached"))
            elif name == "error":
                raise ServiceError(f"job {job_id} failed: {event.get('error')}")
            elif name == "cancelled":
                break
        return out
