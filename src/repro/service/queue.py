"""Bounded priority job queue with backpressure.

The service accepts work faster than the engine can clear it; this queue
is where that pressure becomes visible.  Admission is bounded
(``max_pending``): a submit against a full queue raises
:class:`~repro.errors.QueueFullError` carrying a ``retry_after`` hint —
the server turns that into a reject-with-retry-after reply instead of
letting latency grow without bound.

Ordering is by ``(-priority, submission sequence)``: higher-priority
jobs dequeue first, FIFO within a priority level.  Cancelling a queued
job is lazy — the entry stays in the heap but is skipped at pop time and
stops counting against the admission bound immediately.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import QueueFullError
from repro.service.jobs import Job, JobState

__all__ = ["JobQueue"]

#: retry_after fallback before any job has finished (seconds).
DEFAULT_RETRY_AFTER = 1.0
#: How many recent job durations inform the retry_after estimate.
DURATION_WINDOW = 32


class JobQueue:
    """An asyncio priority queue of :class:`Job`\\ s with bounded admission."""

    def __init__(self, max_pending: int = 16) -> None:
        if max_pending < 1:
            raise QueueFullError(
                f"max_pending must be >= 1, got {max_pending}", retry_after=0.0
            )
        self.max_pending = max_pending
        self._queue: "asyncio.PriorityQueue" = asyncio.PriorityQueue()
        self._admitted: Dict[str, Job] = {}  # queued, not yet popped or cancelled
        self._durations: Deque[float] = deque(maxlen=DURATION_WINDOW)
        self.n_rejected = 0

    # -- admission -------------------------------------------------------------
    def put(self, job: Job) -> None:
        """Admit *job*, or raise :class:`QueueFullError` with a retry hint."""
        if len(self._admitted) >= self.max_pending:
            self.n_rejected += 1
            raise QueueFullError(
                f"job queue at capacity ({self.max_pending} pending)",
                retry_after=self.retry_after(),
            )
        self._admitted[job.id] = job
        self._queue.put_nowait((job.order_key, job))

    async def get(self) -> Job:
        """The next admitted job in priority order (skips cancellations)."""
        while True:
            _, job = await self._queue.get()
            if self._admitted.pop(job.id, None) is not None:
                return job
            # Cancelled while queued: the heap entry is a tombstone.

    # -- cancellation ----------------------------------------------------------
    def discard(self, job: Job) -> bool:
        """Remove a queued *job* from admission; True if it was pending."""
        return self._admitted.pop(job.id, None) is not None

    # -- backpressure accounting -----------------------------------------------
    def record_duration(self, seconds: float) -> None:
        """Feed a completed job's run time into the retry_after estimate."""
        if seconds >= 0:
            self._durations.append(seconds)

    def retry_after(self) -> float:
        """How long a rejected client should wait before resubmitting.

        Estimate: the queue must drain one slot, which takes about one
        average job duration; scale by how deep the backlog is so a
        client rejected behind a long queue backs off harder.
        """
        if self._durations:
            avg = sum(self._durations) / len(self._durations)
        else:
            avg = DEFAULT_RETRY_AFTER
        depth_factor = max(1.0, len(self._admitted) / max(1, self.max_pending))
        return max(0.05, avg * depth_factor)

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._admitted)

    @property
    def depth(self) -> int:
        return len(self._admitted)

    def peek_state(self, job_id: str) -> Optional[JobState]:
        job = self._admitted.get(job_id)
        return job.state if job is not None else None
