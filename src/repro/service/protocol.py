"""JSON-lines wire protocol shared by the service server and client.

Every message is one JSON object per ``\\n``-terminated line, UTF-8.

Client → server ops::

    {"op": "submit", "job": {...job spec...}, "priority": 0, "client": "id"}
    {"op": "status", "job_id": "job-..."}
    {"op": "cancel", "job_id": "job-..."}
    {"op": "stream", "job_id": "job-..."}   # server streams event lines
    {"op": "stats"}
    {"op": "metrics", "spans": false}   # obs exposition (JSON families)
    {"op": "trace", "job_id": "job-..."}   # or {"op": "trace", "trace": "<id>"}
    {"op": "ping"}

``client`` is optional — a self-declared id for per-client quota
accounting (servers fall back to the peer address).  A cluster router
(:mod:`repro.cluster.router`) speaks this same protocol and adds one
debug op, ``{"op": "route", "job": {...}}``, answering where a spec
*would* be placed.

``trace`` returns the buffered spans for one trace — addressed by a
``job_id`` the target knows, or by raw ``trace`` key.  Against a plain
service it answers that node's local buffer; against a router it fans
out to the backends that touched the job and returns the merged,
``node``-labeled, clock-skew-adjusted span list (see
:meth:`repro.cluster.router.ClusterRouter.trace_async`).

A *job spec* names the image one of three ways plus the engine knobs:

``scene``
    ``{"size": 64, "circles": 4, "seed": 0, "threshold": 0.4}`` — a
    synthetic workload generated server-side, mirroring
    ``repro detect`` exactly (so a client can reproduce the request
    locally and check bit-parity).
``image_path``
    A ``*.pgm`` path readable by the *server*.
``pixels``
    ``{"shape": [h, w], "data": "<base64 float64 C-order>"}`` — raw
    pixels inline, for clients whose images exist nowhere the server
    can read.

plus ``strategy``, ``iterations``, ``seed``, ``record_every``,
``options``, ``executor`` (string choices only), ``n_workers``,
``threshold``/``radius_mean`` (model derivation for path/pixel images).

Server → client: every reply carries ``ok``; streamed event lines carry
``event`` (``planned`` / ``partition`` / ``state`` / ``result`` /
``error`` / ``cancelled``).  The terminal events are ``result``,
``error`` and ``cancelled``.  Detection results reuse the cache's JSON
schema (:func:`repro.engine.cache.result_to_json`) so a streamed result
and a cached one are byte-comparable.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, Optional

import numpy as np

from repro.engine.cache import result_to_json
from repro.engine.schema import (
    DetectionEvent,
    DetectionRequest,
    PartitionReport,
    PartitionResultEvent,
    ResultEvent,
    TilePlannedEvent,
)
from repro.errors import (
    DeadlineExceededError,
    JobNotFoundError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.imaging.image import Image

__all__ = [
    "MAX_LINE_BYTES",
    "TERMINAL_EVENTS",
    "encode_line",
    "decode_line",
    "error_reply",
    "request_from_wire",
    "event_to_wire",
    "scene_job",
    "pgm_job",
    "pixels_job",
]

#: StreamReader line limit — inline float64 pixel payloads are large
#: (a 1024² image is ~11 MB of base64).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Event names after which a stream ends.
TERMINAL_EVENTS = frozenset({"result", "error", "cancelled"})


def encode_line(obj: Dict[str, Any]) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServiceError(f"malformed protocol line: {exc}") from None
    if not isinstance(obj, dict):
        raise ServiceError(f"protocol messages are JSON objects, got {type(obj).__name__}")
    return obj


def error_reply(exc: ServiceError) -> Dict[str, Any]:
    """The one exception → ``ok: false`` reply mapping — the wire-error
    contract both the service's and the cluster router's protocol loops
    speak (a handler may map its own subclasses *before* falling back
    here, as the router does for its no-backends case)."""
    if isinstance(exc, QuotaExceededError):
        return {"ok": False, "error": "quota-exceeded",
                "message": str(exc), "retry_after": exc.retry_after}
    if isinstance(exc, QueueFullError):
        return {"ok": False, "error": "queue-full",
                "message": str(exc), "retry_after": exc.retry_after}
    if isinstance(exc, JobNotFoundError):
        return {"ok": False, "error": "unknown-job", "message": str(exc)}
    if isinstance(exc, DeadlineExceededError):
        return {"ok": False, "error": "deadline-exceeded", "message": str(exc)}
    return {"ok": False, "error": "bad-request", "message": str(exc)}


# -- job spec → DetectionRequest ----------------------------------------------

def _require_int(spec: Dict[str, Any], key: str, default=None) -> int:
    value = spec.get(key, default)
    if value is None:
        raise ServiceError(f"job spec is missing required field {key!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"job field {key!r} must be an integer, got {value!r}")
    return value


def request_from_wire(spec: Dict[str, Any]) -> DetectionRequest:
    """Build the engine request a job spec describes.

    Raises :class:`ServiceError` for anything malformed — the server
    turns that into an ``ok: false`` reply rather than a dead worker.
    """
    if not isinstance(spec, dict):
        raise ServiceError(f"job spec must be an object, got {type(spec).__name__}")
    sources = [k for k in ("scene", "image_path", "pixels") if spec.get(k) is not None]
    if len(sources) != 1:
        raise ServiceError(
            "job spec needs exactly one image source of 'scene', "
            f"'image_path', 'pixels'; got {sources or 'none'}"
        )
    strategy = spec.get("strategy", "intelligent")
    iterations = _require_int(spec, "iterations")
    seed = spec.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise ServiceError(f"job field 'seed' must be an integer, got {seed!r}")
    record_every = _require_int(spec, "record_every", 50)
    options = spec.get("options") or {}
    if not isinstance(options, dict):
        raise ServiceError("job field 'options' must be an object")
    executor = spec.get("executor", "serial")
    if executor is not None and not isinstance(executor, str):
        raise ServiceError("job field 'executor' must be a string choice")
    n_workers = spec.get("n_workers")
    threshold = float(spec.get("threshold", 0.4))
    radius_mean = float(spec.get("radius_mean", 8.0))

    source = sources[0]
    try:
        if source == "scene":
            from repro.bench.workloads import synthetic_workload

            scene = spec["scene"]
            if not isinstance(scene, dict):
                raise ServiceError("job field 'scene' must be an object")
            workload = synthetic_workload(
                size=_require_int(scene, "size", 128),
                n_circles=_require_int(scene, "circles", 10),
                mean_radius=float(scene.get("mean_radius", 8.0)),
                threshold=float(scene.get("threshold", threshold)),
                seed=scene.get("seed", seed),
            )
            return workload.request(
                strategy,
                iterations=iterations,
                executor=executor,
                n_workers=n_workers,
                seed=seed,
                record_every=record_every,
                options=options or None,
            )
        if source == "image_path":
            from repro.imaging.pgm import read_pgm

            image = read_pgm(spec["image_path"])
        else:  # pixels
            image = _decode_pixels(spec["pixels"])
        from repro.bench.workloads import request_for_image

        return request_for_image(
            image,
            strategy,
            iterations=iterations,
            threshold=threshold,
            radius_mean=radius_mean,
            executor=executor,
            n_workers=n_workers,
            seed=seed,
            record_every=record_every,
            options=options or None,
        )
    except ServiceError:
        raise
    except Exception as exc:  # bad paths, bad model params, unknown options...
        raise ServiceError(f"invalid job spec: {exc}") from exc


def _decode_pixels(payload: Dict[str, Any]) -> Image:
    if not isinstance(payload, dict) or "shape" not in payload or "data" not in payload:
        raise ServiceError("job field 'pixels' needs 'shape' and 'data'")
    shape = payload["shape"]
    if not (isinstance(shape, (list, tuple)) and len(shape) == 2):
        raise ServiceError(f"pixels shape must be [height, width], got {shape!r}")
    try:
        raw = base64.b64decode(payload["data"], validate=True)
        arr = np.frombuffer(raw, dtype=np.float64).reshape(int(shape[0]), int(shape[1]))
    except (ValueError, TypeError) as exc:
        raise ServiceError(f"undecodable pixel payload: {exc}") from None
    return Image(arr)


def _encode_pixels(image: Image) -> Dict[str, Any]:
    return {
        "shape": [image.height, image.width],
        "data": base64.b64encode(np.ascontiguousarray(image.pixels).tobytes()).decode("ascii"),
    }


# -- job spec builders (client-side conveniences) ------------------------------

def scene_job(
    size: int,
    circles: int,
    strategy: str = "intelligent",
    iterations: int = 2000,
    seed: Optional[int] = 0,
    threshold: float = 0.4,
    **extra: Any,
) -> Dict[str, Any]:
    """A submit payload for a server-generated synthetic scene."""
    job = {
        "scene": {"size": size, "circles": circles, "seed": seed, "threshold": threshold},
        "strategy": strategy,
        "iterations": iterations,
        "seed": seed,
    }
    job.update(extra)
    return job


def pgm_job(path: str, strategy: str = "intelligent", iterations: int = 2000,
            seed: Optional[int] = 0, **extra: Any) -> Dict[str, Any]:
    """A submit payload naming a PGM file the server can read."""
    job = {"image_path": str(path), "strategy": strategy,
           "iterations": iterations, "seed": seed}
    job.update(extra)
    return job


def pixels_job(image: Image, strategy: str = "intelligent", iterations: int = 2000,
               seed: Optional[int] = 0, **extra: Any) -> Dict[str, Any]:
    """A submit payload carrying the image inline (base64 float64)."""
    job = {"pixels": _encode_pixels(image), "strategy": strategy,
           "iterations": iterations, "seed": seed}
    job.update(extra)
    return job


# -- engine events → wire ------------------------------------------------------

def _report_wire(report: PartitionReport) -> Dict[str, Any]:
    return {
        "rect": [report.rect.x0, report.rect.y0, report.rect.x1, report.rect.y1],
        "expected_count": report.expected_count,
        "n_found": report.n_found,
        "iterations": report.iterations,
        "elapsed_seconds": report.elapsed_seconds,
    }


def event_to_wire(event: DetectionEvent, cached: bool = False) -> Dict[str, Any]:
    """One engine event as its wire document."""
    if isinstance(event, TilePlannedEvent):
        return {
            "event": "planned",
            "index": event.index,
            "rect": [event.rect.x0, event.rect.y0, event.rect.x1, event.rect.y1],
            "expected_count": event.expected_count,
        }
    if isinstance(event, PartitionResultEvent):
        return {
            "event": "partition",
            "index": event.index,
            "n_tasks": event.n_tasks,
            "report": _report_wire(event.report),
            "circles": [[c.x, c.y, c.r] for c in event.circles],
        }
    if isinstance(event, ResultEvent):
        return {
            "event": "result",
            "cached": cached,
            "result": result_to_json(event.result),
        }
    raise ServiceError(f"unknown engine event {type(event).__name__}")
