"""Job objects: one submitted detection request and its lifecycle.

A :class:`Job` is the service's unit of work — a
:class:`~repro.engine.schema.DetectionRequest` plus identity, priority,
state, and the growing log of wire events its run has produced.  Jobs
move ``queued → running → done`` (or ``failed``/``cancelled``); every
transition and every engine event is published to the job's subscribers,
so a client that attaches mid-run replays history and then follows live.

Thread model: jobs are mutated from two sides — the asyncio loop
(submit/cancel/subscribe) and the engine worker thread (event
publication).  All mutation is funnelled through the loop thread (the
server wraps worker-side publishes in ``call_soon_threadsafe``), so jobs
need no locks; the one flag a worker thread reads directly,
``cancel_requested``, is a monotonic bool.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.engine.schema import DetectionRequest, DetectionResult

__all__ = ["Job", "JobState", "TERMINAL_STATES"]

_SEQ = itertools.count()


class JobState(str, Enum):
    """Lifecycle states; the string values are the wire vocabulary."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})


def _job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class Job:
    """One submitted request and everything the service knows about it.

    ``request`` is dropped (set to ``None``) once the job is terminal —
    retained jobs answer status/replay from ``events``/``result``
    without pinning the image pixels.
    """

    request: Optional[DetectionRequest]
    key: Optional[str] = None  #: content-addressed request_key (None: uncacheable)
    priority: int = 0
    id: str = field(default_factory=_job_id)
    seq: int = field(default_factory=lambda: next(_SEQ))
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cached: bool = False
    error: Optional[str] = None
    result: Optional[DetectionResult] = None
    cancel_requested: bool = False
    logged: bool = False  #: has a pending record in the service's job log
    #: Absolute monotonic time after which the client has given up
    #: (propagated wire deadline); workers shed the job instead of
    #: running it past this point.
    deadline_at: Optional[float] = None
    #: Remote parent span id (wire ``trace`` field) — engine spans of
    #: this job's run parent under the submitter's span.
    trace_id: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    _subscribers: List["asyncio.Queue"] = field(default_factory=list)

    @property
    def order_key(self):
        """Queue ordering: higher priority first, FIFO within a priority."""
        return (-self.priority, self.seq)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- event fan-out (loop thread only) -------------------------------------
    def publish(self, event: Dict[str, Any]) -> None:
        """Append *event* to the log and push it to every subscriber."""
        self.events.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)

    def subscribe(self) -> "asyncio.Queue":
        """A queue pre-loaded with the event history, then fed live.

        The subscriber must drain until it sees a terminal event, then
        call :meth:`unsubscribe`.  For jobs already terminal the history
        alone carries the terminal event, so no live feed is needed.
        """
        queue: "asyncio.Queue" = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if not self.terminal:
            self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: "asyncio.Queue") -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    # -- status surface --------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The wire-level status document for ``op: status``."""
        waited = (self.started_at or time.monotonic()) - self.submitted_at
        doc: Dict[str, Any] = {
            "job_id": self.id,
            "state": self.state.value,
            "priority": self.priority,
            "cached": self.cached,
            "n_events": len(self.events),
            "queued_seconds": waited,
        }
        if self.started_at is not None and self.finished_at is not None:
            doc["run_seconds"] = self.finished_at - self.started_at
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["n_found"] = self.result.n_found
            doc["n_partitions"] = self.result.n_partitions
        return doc
